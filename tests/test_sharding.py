"""Partition-parallel sharding: determinism, merge ordering, CLI.

The acceptance contract: the merged :class:`~repro.metrics.log.EventLog` of a
sharded run is a pure function of the shard specs — an N-worker pool, the
inline 1-worker path and a same-seed repeat must all produce byte-identical
merged logs (asserted through :func:`~repro.sim.shard.log_digest`).
"""

from __future__ import annotations

import pytest

from repro.metrics.log import SinkReceipt, SourceEmit
from repro.sim.shard import (
    SHARD_ID_STRIDE,
    ShardResult,
    ShardSpec,
    log_digest,
    merge_monitor_samples,
    merge_shard_results,
    run_shards,
    shard_worker_count,
)
from repro.experiments.sharded import (
    plan_shards,
    run_sharded_elastic_experiment,
    run_sharded_experiment,
    run_steady_shard,
)


class TestShardSpec:
    def test_index_must_be_within_shards(self):
        with pytest.raises(ValueError):
            ShardSpec(index=3, shards=3)
        with pytest.raises(ValueError):
            ShardSpec(index=-1, shards=2)
        with pytest.raises(ValueError):
            ShardSpec(index=0, shards=0)

    def test_shard_seeds_are_distinct_and_stable(self):
        seeds = {ShardSpec(index=i, shards=4).shard_seed for i in range(4)}
        assert len(seeds) == 4
        assert ShardSpec(index=1, shards=4).shard_seed == ShardSpec(index=1, shards=4).shard_seed

    def test_plan_shards_covers_every_partition(self):
        specs = plan_shards(dag="grid", shards=3, duration_s=5.0)
        assert [s.index for s in specs] == [0, 1, 2]
        assert all(s.shards == 3 for s in specs)


class TestWorkerCount:
    @pytest.fixture(autouse=True)
    def eight_cpus(self, monkeypatch):
        """Pin the CPU count so the clamp is testable on any machine."""
        monkeypatch.setattr("os.cpu_count", lambda: 8)

    def test_env_var_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "2")
        assert shard_worker_count(8) == 2

    def test_env_var_capped_at_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "64")
        assert shard_worker_count(3) == 3

    def test_env_var_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "64")
        assert shard_worker_count(32) == 8

    def test_env_var_zero_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "0")
        assert shard_worker_count(4) == 4
        assert shard_worker_count(32) == 8

    def test_invalid_env_var_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "not-a-number")
        assert 1 <= shard_worker_count(4) <= 4

    def test_default_capped_at_shards(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_SHARDS", raising=False)
        assert shard_worker_count(1) == 1


class TestMergeDeterminism:
    """Synthetic shard results: the merge is order- and pool-invariant."""

    @staticmethod
    def make_results():
        def emit(time, root):
            return SourceEmit(time=time, root_id=root, source="src", replay_count=0,
                              from_backlog=False)

        def receipt(time, root, event_id):
            return SinkReceipt(time=time, root_id=root, event_id=event_id, sink="sink",
                               root_emitted_at=time - 0.5, replay_count=0)

        # Equal-time records across shards: ties must break on namespaced id.
        shard0 = ShardResult(index=0, emits=[emit(1.0, 1), emit(2.0, 2)],
                             receipts=[receipt(3.0, 1, 10), receipt(4.0, 2, 11)])
        shard1 = ShardResult(index=1, emits=[emit(1.0, 1), emit(2.5, 2)],
                             receipts=[receipt(3.0, 1, 10), receipt(5.0, 2, 11)])
        return [shard0, shard1]

    def test_ids_are_namespaced_by_shard(self):
        log = merge_shard_results(self.make_results())
        roots = [e.root_id for e in log.source_emits]
        assert roots == [1, SHARD_ID_STRIDE + 1, 2, SHARD_ID_STRIDE + 2]
        assert log.distinct_roots_received() == 4

    def test_equal_times_break_ties_on_namespaced_id(self):
        log = merge_shard_results(self.make_results())
        assert [(e.time, e.root_id) for e in log.source_emits[:2]] == [
            (1.0, 1), (1.0, SHARD_ID_STRIDE + 1)
        ]
        assert [(r.time, r.event_id) for r in log.sink_receipts[:2]] == [
            (3.0, 10), (3.0, SHARD_ID_STRIDE + 10)
        ]

    def test_merge_is_input_order_invariant(self):
        results = self.make_results()
        forward = log_digest(merge_shard_results(results))
        backward = log_digest(merge_shard_results(list(reversed(results))))
        assert forward == backward

    def test_time_indexes_stay_monotone(self):
        log = merge_shard_results(self.make_results())
        assert log.emit_times == sorted(log.emit_times)
        assert log.receipt_times == sorted(log.receipt_times)
        assert len(log.emit_times) == len(log.source_emits)
        assert len(log.receipt_times) == len(log.sink_receipts)


class TestShardedRunDeterminism:
    """End-to-end: pool size cannot affect the merged log."""

    ARGS = dict(dag="grid", shards=3, duration_s=10.0, seed=2018)

    def test_pool_matches_inline_byte_for_byte(self):
        inline = run_sharded_experiment(workers=1, **self.ARGS)
        pooled = run_sharded_experiment(workers=3, **self.ARGS)
        assert pooled.digest == inline.digest
        assert pooled.workers == 3 and inline.workers == 1

    def test_same_seed_repeat_is_identical(self):
        first = run_sharded_experiment(workers=2, **self.ARGS)
        second = run_sharded_experiment(workers=2, **self.ARGS)
        assert second.digest == first.digest

    def test_different_seed_differs(self):
        base = run_sharded_experiment(workers=1, **self.ARGS)
        other = run_sharded_experiment(workers=1, **{**self.ARGS, "seed": 7})
        assert other.digest != base.digest

    def test_merged_log_aggregates_every_shard(self):
        result = run_sharded_experiment(workers=1, **self.ARGS)
        assert len(result.log.source_emits) == sum(r.emit_count for r in result.results)
        assert len(result.log.sink_receipts) == sum(r.receipt_count for r in result.results)
        assert result.log.distinct_roots_received() == sum(
            int(r.summary["distinct_roots_received"]) for r in result.results
        )

    def test_batched_and_classic_shards_agree_on_times(self):
        # Shard workers default to batch stepping, which is equivalent to the
        # classic kernel modulo event-id assignment order — so the merged
        # emission/receipt *times* must match exactly even though the digests
        # (which hash the ids) differ.
        batched = run_sharded_experiment(workers=1, **self.ARGS)
        classic = run_sharded_experiment(workers=1, batch_stepping=False, **self.ARGS)
        assert classic.log.emit_times == batched.log.emit_times
        assert classic.log.receipt_times == batched.log.receipt_times


def _sample(time, input_rate=0.0, offered_rate=0.0, output_rate=0.0,
            avg_latency_s=None, queue_backlog=0, source_backlog=0,
            sources_paused=False):
    from repro.elastic.monitor import MonitorSample

    return MonitorSample(time=time, input_rate=input_rate, offered_rate=offered_rate,
                         output_rate=output_rate, avg_latency_s=avg_latency_s,
                         queue_backlog=queue_backlog, source_backlog=source_backlog,
                         sources_paused=sources_paused)


class TestMergeMonitorSamples:
    def test_rates_and_backlogs_sum_per_timestamp(self):
        merged = merge_monitor_samples([
            [_sample(15.0, input_rate=4.0, offered_rate=5.0, output_rate=16.0,
                     avg_latency_s=0.5, queue_backlog=2, source_backlog=1),
             _sample(30.0, offered_rate=1.0)],
            [_sample(15.0, input_rate=6.0, offered_rate=5.0, output_rate=4.0,
                     avg_latency_s=1.5, queue_backlog=3)],
        ])
        assert [s.time for s in merged] == [15.0, 30.0]
        first = merged[0]
        assert first.input_rate == 10.0
        assert first.offered_rate == 10.0
        assert first.output_rate == 20.0
        assert first.queue_backlog == 5
        assert first.source_backlog == 1

    def test_latency_is_output_rate_weighted(self):
        merged = merge_monitor_samples([
            [_sample(15.0, output_rate=16.0, avg_latency_s=0.5)],
            [_sample(15.0, output_rate=4.0, avg_latency_s=1.5)],
        ])
        assert merged[0].avg_latency_s == pytest.approx((16 * 0.5 + 4 * 1.5) / 20)

    def test_latency_none_when_no_shard_received(self):
        merged = merge_monitor_samples([[_sample(15.0)], [_sample(15.0)]])
        assert merged[0].avg_latency_s is None

    def test_paused_only_when_all_shards_paused(self):
        half = merge_monitor_samples([[_sample(15.0, sources_paused=True)],
                                      [_sample(15.0, sources_paused=False)]])
        both = merge_monitor_samples([[_sample(15.0, sources_paused=True)],
                                      [_sample(15.0, sources_paused=True)]])
        assert half[0].sources_paused is False
        assert both[0].sources_paused is True


class TestShardedElastic:
    """Profile-driven shards + centralized controller plan: pool-invariant."""

    ARGS = dict(dag="grid", shards=2, duration_s=240.0, seed=2018, profile="surge")

    def test_pool_invariant_digest_and_actions(self):
        inline = run_sharded_elastic_experiment(workers=1, **self.ARGS)
        pooled = run_sharded_elastic_experiment(workers=2, **self.ARGS)
        assert pooled.digest == inline.digest
        assert pooled.action_sequence == inline.action_sequence

    def test_surge_plans_out_then_back_in(self):
        result = run_sharded_elastic_experiment(workers=1, **self.ARGS)
        assert [a.direction for a in result.actions] == ["out", "in"]
        assert (result.actions[0].from_tier, result.actions[0].to_tier) == \
            ("baseline", "expanded")
        assert (result.actions[1].from_tier, result.actions[1].to_tier) == \
            ("expanded", "baseline")
        # The scale-out must be decided while the surge is actually offered.
        assert result.actions[0].observed_rate > result.actions[1].observed_rate

    def test_merged_samples_are_cluster_wide(self):
        result = run_sharded_elastic_experiment(workers=1, **self.ARGS)
        times = [s.time for s in result.samples]
        assert times == sorted(set(times))  # one merged sample per tick
        per_shard = max(len(r.samples) for r in result.results)
        assert len(times) == per_shard
        # Offered rates sum across shards: the surge peak must show the full
        # dataflow rate (8 ev/s baseline, ~3x during the surge), not a
        # single shard's slice of it.
        peak = max(s.offered_rate for s in result.samples)
        assert peak > 8.0


def test_run_shards_requires_picklable_specs_only_for_pools():
    # The inline path never touches a pool: a runner defined locally works.
    specs = [ShardSpec(index=0, shards=1, duration_s=1.0)]
    calls = []

    def runner(spec):
        calls.append(spec.index)
        return ShardResult(index=spec.index)

    results = run_shards(specs, runner, workers=1)
    assert calls == [0]
    assert results[0].index == 0


class TestShardCLI:
    def test_shard_command_prints_digest(self, capsys):
        from repro.cli import main

        code = main(["shard", "--dag", "grid", "--shards", "2", "--workers", "1",
                     "--duration", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "merged log digest:" in out
        assert "Per-shard summaries" in out

    def test_shard_command_rejects_bad_count(self, capsys):
        from repro.cli import main

        assert main(["shard", "--shards", "0"]) == 2

    def test_shard_elastic_prints_actions_and_digest(self, capsys):
        from repro.cli import main

        code = main(["shard", "--elastic", "--dag", "grid", "--shards", "2",
                     "--workers", "1", "--duration", "240"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Sharded elastic run:" in out
        assert "Planned scaling actions" in out
        assert "baseline -> expanded" in out
        assert "merged log digest:" in out
