"""Batched-kernel equivalence vs the classic event loop.

The batch-stepping cascade (``RuntimeConfig.batch_stepping``) materializes
whole steady-state stretches inside one kernel callback — vectorized over
struct-of-arrays when numpy is available, through an inline per-event heap
otherwise.  Its contract:

* **vectorized tier** — logs equivalent to the classic keyed kernel *modulo
  event-id assignment order*: identical emission/receipt times, sinks,
  latencies, executor counters and routed counts, with root identity mapped
  through emission order;
* **heap tier** (``batch_vectorize=False``) — logs *exactly* equal to the
  classic keyed kernel, event ids included.

These tests pin both tiers against the classic loop on the Grid DAG — cold
runs and windowed runs whose window boundaries land mid-pipeline (exercising
the in-flight ingestion path, where the vectorized sweep adopts queued
deliveries and busy executors instead of declining) — and on a full
closed-loop elastic run with migrations.  They also cover the batch-mode
primitives the cascade is built on: ``Simulator.run_batched`` cohorts,
bit-identical block RNG draws, bulk event-id reservation and the fan-out
event pool.
"""

from __future__ import annotations

import pytest

from repro.dataflow import topologies
from repro.dataflow.event import (
    Event,
    next_event_id,
    recycle_event,
    reserve_event_ids,
    reset_event_ids,
)
from repro.elastic import ControllerConfig
from repro.engine.runtime import TopologyRuntime
from repro.experiments import run_elastic_experiment
from repro.sim import Simulator
from repro.sim.rng import keyed_value, keyed_value_block
from repro.workloads import StepProfile

from tests.conftest import build_cluster, fast_config


# ------------------------------------------------------------------ builders
def build_grid(batch_stepping: bool, batch_vectorize: bool = True):
    """A deployed Grid runtime with the keyed-jitter timing model."""
    reset_event_ids()
    sim = Simulator()
    cluster = build_cluster(sim, worker_vms=11)
    config = fast_config("dcr")
    config.keyed_network_jitter = True
    config.batch_stepping = batch_stepping
    config.batch_vectorize = batch_vectorize
    runtime = TopologyRuntime(topologies.grid(), cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()
    return sim, runtime


def run_windows(batch_stepping: bool, windows: int, step_s: float,
                batch_vectorize: bool = True):
    """Run in fixed windows so boundaries land mid-pipeline (in-flight work)."""
    sim, runtime = build_grid(batch_stepping, batch_vectorize)
    for _ in range(windows):
        sim.run(until=sim.now + step_s)
    return sim, runtime


def fingerprint_modulo_ids(runtime: TopologyRuntime):
    """Everything observable about a run except event-id assignment order.

    Root identity is mapped through emission order, so two runs agree iff
    their logs match modulo the ids themselves.
    """
    log = runtime.log
    emission_order = {e.root_id: i for i, e in enumerate(log.source_emits)}
    emits = [(e.time, e.source, e.replay_count, e.from_backlog) for e in log.source_emits]
    receipts = sorted(
        (r.time, emission_order[r.root_id], r.sink, r.root_emitted_at, r.replay_count)
        for r in log.sink_receipts
    )
    counters = {
        executor_id: (
            executor.processed_count,
            round(executor.busy_time_s, 12),
            getattr(executor, "received_count", None),
            executor.state.get("processed") if executor.state else None,
            len(executor.input_queue),
            executor._busy,
        )
        for executor_id, executor in sorted(runtime.executors.items())
    }
    return emits, receipts, counters, runtime.router.routed_count


def fingerprint_exact(runtime: TopologyRuntime):
    """Every log record verbatim — ids included."""
    log = runtime.log
    return (
        [tuple(vars_of(e)) for e in log.source_emits],
        [tuple(vars_of(r)) for r in log.sink_receipts],
        runtime.router.routed_count,
    )


def vars_of(record):
    return [getattr(record, name) for name in record.__slots__]


# ------------------------------------------------- grid: vectorized cascade
class TestVectorizedEquivalence:
    """Vectorized batch stepping == classic keyed kernel, modulo event ids."""

    @pytest.mark.parametrize(
        "windows,step_s",
        [(1, 10.0), (20, 0.5), (40, 0.25), (7, 1.3)],
        ids=["cold-10s", "20x0.5s", "40x0.25s", "7x1.3s"],
    )
    def test_grid_run_matches_classic(self, windows, step_s):
        _, classic = run_windows(False, windows, step_s)
        expected = fingerprint_modulo_ids(classic)
        _, batched = run_windows(True, windows, step_s)
        assert fingerprint_modulo_ids(batched) == expected

    def test_windowed_run_cascades_every_window(self):
        # Window boundaries leave deliveries and busy executors in flight at
        # every resume; the in-flight ingestion must re-engage the vectorized
        # sweep each window rather than falling back to classic stepping.
        _, runtime = run_windows(True, 20, 0.5)
        stepper = runtime.batch_stepper
        assert stepper.vector_cascades >= 20
        assert stepper.inline_events > 0

    def test_cold_run_is_mostly_inline(self):
        _, runtime = run_windows(True, 1, 10.0)
        stepper = runtime.batch_stepper
        assert stepper.vector_cascades >= 1
        # The steady-state stretch dominates: nearly all events bypass the heap.
        assert stepper.inline_events > 10 * len(runtime.log.source_emits)


# ------------------------------------------------------ grid: heap fallback
class TestHeapTierExactEquivalence:
    """``batch_vectorize=False`` must match the classic kernel bit for bit."""

    @pytest.mark.parametrize(
        "windows,step_s", [(1, 10.0), (7, 1.3)], ids=["cold-10s", "7x1.3s"]
    )
    def test_grid_run_identical_including_event_ids(self, windows, step_s):
        _, classic = run_windows(False, windows, step_s)
        expected = fingerprint_exact(classic)
        _, batched = run_windows(True, windows, step_s, batch_vectorize=False)
        assert fingerprint_exact(batched) == expected


# --------------------------------------------------------------- elastic run
class TestElasticEquivalence:
    """Batched mode survives a full closed-loop run: profile-driven sources,
    migrations (the cascade must disengage around protocol activity and
    re-engage after), backlog drains — logs and scaling decisions identical
    to the classic keyed kernel modulo event ids."""

    def run_elastic(self, batch_stepping: bool):
        config = fast_config("ccr", seed=11)
        config.keyed_network_jitter = True
        config.batch_stepping = batch_stepping
        return run_elastic_experiment(
            dag="traffic",
            strategy="ccr",
            profile=StepProfile(steps=[(0.0, 8.0), (60.0, 24.0), (140.0, 8.0)]),
            duration_s=220.0,
            seed=11,
            dataflow=topologies.traffic(latency_s=0.02),
            config=config,
            controller_config=ControllerConfig(
                check_interval_s=5.0, confirm_samples=2, cooldown_s=30.0
            ),
            provisioning_latency_s=2.0,
        )

    @staticmethod
    def fingerprint(result):
        log = result.log
        emission_order = {e.root_id: i for i, e in enumerate(log.source_emits)}
        emits = [(e.time, e.source, e.replay_count, e.from_backlog) for e in log.source_emits]
        receipts = sorted(
            (r.time, emission_order[r.root_id], r.sink, r.root_emitted_at, r.replay_count)
            for r in log.sink_receipts
        )
        actions = [
            (a.direction, a.from_tier, a.to_tier, a.decided_at, a.enacted_at, a.completed_at)
            for a in result.actions
        ]
        return emits, receipts, actions

    def test_elastic_run_matches_classic(self):
        expected = self.fingerprint(self.run_elastic(False))
        batched_result = self.run_elastic(True)
        assert self.fingerprint(batched_result) == expected
        # The cascade actually carried the run (not a silent classic fallback).
        assert batched_result.runtime.batch_stepper.vector_cascades > 0


# ----------------------------------------------------- run_batched() cohorts
class TestRunBatchedCohorts:
    def test_consecutive_same_time_entries_form_one_cohort(self):
        sim = Simulator()
        seen = []
        sim.register_batch_handler(seen.append, lambda time, cohort: seen.append((time, cohort)))
        for value in ("a", "b", "c"):
            sim.schedule_at_fast(1.0, seen.append, (value,))
        sim.schedule_at_fast(2.0, seen.append, ("d",))
        sim.run_batched()
        assert seen == [(1.0, [("a",), ("b",), ("c",)]), (2.0, [("d",)])]

    def test_unregistered_callbacks_run_individually(self):
        sim = Simulator()
        seen = []
        for value in (1, 2):
            sim.schedule_at_fast(1.0, seen.append, (value,))
        sim.run_batched()
        assert seen == [1, 2]

    def test_timers_interleave_with_cohorts(self):
        sim = Simulator()
        order = []
        sim.register_batch_handler(order.append, lambda t, cohort: order.append(("cohort", t, len(cohort))))
        sim.schedule_at_fast(1.0, order.append, ("x",))
        sim.schedule_at_fast(1.0, order.append, ("y",))
        sim.schedule(1.5, lambda: order.append("timer"))
        sim.schedule_at_fast(2.0, order.append, ("z",))
        sim.run_batched()
        assert order == [("cohort", 1.0, 2), "timer", ("cohort", 2.0, 1)]

    def test_run_until_semantics_match_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at_fast(1.0, fired.append, (1,))
        sim.schedule_at_fast(3.0, fired.append, (3,))
        sim.run_batched(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0


# ----------------------------------------------------------- RNG block draws
class TestKeyedValueBlock:
    def test_bit_identical_to_scalar_draws(self):
        np = pytest.importorskip("numpy")
        for seed in (0, 1, 2018, (1 << 64) - 1, 0x9E3779B97F4A7C15):
            for start, count in ((0, 1), (0, 17), (5, 64), (123456789, 7)):
                block = keyed_value_block(seed, start, count, np)
                scalars = [keyed_value(seed, start + i) for i in range(count)]
                assert block.tolist() == scalars

    def test_values_in_unit_interval(self):
        np = pytest.importorskip("numpy")
        block = keyed_value_block(42, 0, 1000, np)
        assert float(block.min()) >= 0.0
        assert float(block.max()) < 1.0


# -------------------------------------------------------- event-id bulk path
class TestReserveEventIds:
    def test_reservation_is_contiguous_and_advances_counter(self):
        reset_event_ids()
        first = next_event_id()
        base = reserve_event_ids(5)
        assert base == first + 1
        assert next_event_id() == base + 5

    def test_equivalent_to_individual_draws(self):
        reset_event_ids()
        base = reserve_event_ids(4)
        reserved = list(range(base, base + 4))
        reset_event_ids()
        individual = [next_event_id() for _ in range(4)]
        assert reserved == individual


# ------------------------------------------------------------- event pooling
class TestEventPooling:
    def test_recycled_clone_is_reused_by_copy_for_edge(self):
        reset_event_ids()
        root = Event.data("src", payload={"seq": 1}, created_at=1.0)
        clone = root.copy_for_edge()
        recycle_event(clone)
        assert clone.payload is None  # pool never keeps user data alive
        reused = root.copy_for_edge()
        assert reused is clone
        assert reused.payload == {"seq": 1}
        assert reused.root_id == root.root_id
        assert reused.event_id != root.event_id

    def test_anchored_events_are_not_pooled(self):
        reset_event_ids()
        root = Event.data("src", anchored=True, created_at=0.0)
        clone = root.copy_for_edge()
        recycle_event(clone)
        assert root.copy_for_edge() is not clone

    def test_reset_event_ids_drains_the_pool(self):
        reset_event_ids()
        root = Event.data("src", created_at=0.0)
        clone = root.copy_for_edge()
        recycle_event(clone)
        reset_event_ids()
        fresh_root = Event.data("src", created_at=0.0)
        assert fresh_root.copy_for_edge() is not clone
