"""Shared fixtures for the test suite.

Most engine/strategy tests run against a small three-task dataflow on a tiny
cluster with an accelerated timing model so individual tests stay fast while
exercising the same code paths as the full paper experiments.
"""

from __future__ import annotations

import pytest

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.vm import D2, D3
from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.graph import Dataflow
from repro.engine.config import ReliabilityConfig, RuntimeConfig, TimingConfig
from repro.engine.runtime import TopologyRuntime
from repro.sim import Simulator


def fast_timing() -> TimingConfig:
    """Timing model scaled down so migration tests complete in a few simulated seconds."""
    return TimingConfig(
        checkpoint_handling_s=0.001,
        rebalance_command_mean_s=1.0,
        rebalance_command_stddev_s=0.05,
        worker_start_base_s=0.5,
        worker_start_spread_base_s=0.5,
        worker_start_spread_per_executor_s=0.05,
        loaded_start_multiplier=1.5,
        loaded_start_per_executor_s=0.1,
        source_max_burst_rate=200.0,
        quiesce_delay_s=0.02,
    )


def fast_config(strategy: str = "dcr", seed: int = 7, ack_timeout_s: float = 5.0) -> RuntimeConfig:
    """Runtime configuration for a strategy with the accelerated timing model."""
    if strategy == "dsm":
        reliability = ReliabilityConfig(
            ack_all_events=True,
            ack_timeout_s=ack_timeout_s,
            periodic_checkpoint_interval_s=5.0,
            capture_on_prepare=False,
            max_spout_pending=64,
        )
    elif strategy == "ccr":
        reliability = ReliabilityConfig(ack_all_events=False, capture_on_prepare=True)
    else:
        reliability = ReliabilityConfig(ack_all_events=False, capture_on_prepare=False)
    return RuntimeConfig(reliability=reliability, timing=fast_timing(), seed=seed)


def tiny_dataflow(rate: float = 10.0, latency_s: float = 0.02) -> Dataflow:
    """A three-task chain (source -> a -> b -> c -> sink) with a stateful middle task."""
    builder = TopologyBuilder("tiny")
    builder.add_source("source", rate=rate)
    builder.add_task("a", parallelism=1, latency_s=latency_s, stateful=True)
    builder.add_task("b", parallelism=2, latency_s=latency_s, stateful=True)
    builder.add_task("c", parallelism=1, latency_s=latency_s)
    builder.add_sink("sink")
    builder.chain("source", "a", "b", "c", "sink")
    return builder.build()


def fanout_dataflow(rate: float = 10.0, latency_s: float = 0.02) -> Dataflow:
    """A fan-out/fan-in dataflow used for barrier-alignment and routing tests."""
    builder = TopologyBuilder("fanout")
    builder.add_source("source", rate=rate)
    builder.add_task("split", parallelism=1, latency_s=latency_s, stateful=True)
    builder.add_task("left", parallelism=2, latency_s=latency_s)
    builder.add_task("right", parallelism=1, latency_s=latency_s, stateful=True)
    builder.add_task("merge", parallelism=2, latency_s=latency_s, stateful=True)
    builder.add_sink("sink")
    builder.connect("source", "split")
    builder.fan_out("split", ["left", "right"])
    builder.fan_in(["left", "right"], "merge")
    builder.connect("merge", "sink")
    return builder.build()


def build_cluster(sim: Simulator, worker_vms: int = 3, util: bool = True) -> Cluster:
    """A cluster with an optional util VM (source/sink host) plus D2 worker VMs."""
    provider = CloudProvider(sim)
    cluster = Cluster()
    if util:
        util_vm = provider.provision(D3, 1, name_prefix="util")[0]
        util_vm.tags["role"] = "util"
        cluster.add_vm(util_vm)
    for vm in provider.provision(D2, worker_vms, name_prefix="w"):
        cluster.add_vm(vm)
    return cluster


def make_runtime(
    dataflow: Dataflow = None,
    strategy: str = "dcr",
    worker_vms: int = 3,
    seed: int = 7,
) -> TopologyRuntime:
    """Build a deployed-but-not-started runtime for tests."""
    sim = Simulator()
    dataflow = dataflow if dataflow is not None else tiny_dataflow()
    cluster = build_cluster(sim, worker_vms=worker_vms)
    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=fast_config(strategy, seed=seed))
    runtime.deploy()
    return runtime


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def tiny_df() -> Dataflow:
    """The small chain dataflow."""
    return tiny_dataflow()


@pytest.fixture
def fanout_df() -> Dataflow:
    """The small fan-out/fan-in dataflow."""
    return fanout_dataflow()


@pytest.fixture
def deployed_runtime() -> TopologyRuntime:
    """A deployed (not started) runtime for the tiny dataflow under DCR config."""
    return make_runtime()
