"""Unit tests for the named random-stream source."""

from __future__ import annotations

from repro.sim import RandomSource


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.uniform("x", 0, 1) for _ in range(5)] == [b.uniform("x", 0, 1) for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.uniform("x", 0, 1) for _ in range(5)] != [b.uniform("x", 0, 1) for _ in range(5)]

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        a = RandomSource(42)
        b = RandomSource(42)
        expected = [b.uniform("target", 0, 1) for _ in range(5)]
        for _ in range(100):
            a.uniform("other", 0, 1)
        observed = [a.uniform("target", 0, 1) for _ in range(5)]
        assert observed == expected

    def test_stream_is_cached(self):
        rng = RandomSource(3)
        assert rng.stream("s") is rng.stream("s")

    def test_gauss_with_zero_sigma_returns_mu(self):
        assert RandomSource(1).gauss("g", 5.0, 0.0) == 5.0

    def test_randint_within_bounds(self):
        rng = RandomSource(9)
        values = [rng.randint("i", 3, 7) for _ in range(100)]
        assert all(3 <= v <= 7 for v in values)
        assert len(set(values)) > 1

    def test_expovariate_positive(self):
        rng = RandomSource(11)
        assert all(rng.expovariate("e", 2.0) > 0 for _ in range(50))

    def test_fork_is_deterministic_and_distinct(self):
        parent = RandomSource(5)
        child1 = parent.fork("worker")
        child2 = RandomSource(5).fork("worker")
        other = parent.fork("other")
        assert child1.uniform("x", 0, 1) == child2.uniform("x", 0, 1)
        assert child1.master_seed != other.master_seed
