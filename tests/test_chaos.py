"""Chaos-engineering robustness: spot evictions, unplanned VM loss, recovery.

Covers the chaos-capable cloud layer end to end:

* the occupied-VM removal guard (``Cluster.remove_vm`` fails loudly);
* arbiter accounting when a granted tenant's delta VMs die (the reservation
  and migration token go back to the budget instead of leaking);
* acceptance (a): a zero-notice VM kill recovers via checkpoint restore with
  no lost ``by_key`` state and bounded replays, including a kill landing
  mid-evacuation-migration;
* acceptance (b): under a spot eviction storm the notice-aware controller
  beats the oblivious baseline on restore latency AND total cost;
* determinism: same-seed chaos runs produce byte-identical event-log digests
  and identical controller action sequences for all three strategies;
* the batch stepper disengages around injected faults: a chaos run with
  batch stepping on (non-vectorized tier) matches the classic keyed kernel
  log exactly.
"""

import copy
import json
import math
from pathlib import Path

import pytest

from repro.cluster.chaos import KILL, ChaosSchedule, FaultEvent, FaultInjector
from repro.cluster.cloud import (
    ON_DEMAND,
    SPOT,
    CloudProvider,
    Cluster,
    ProvisioningModel,
    SpotMarket,
)
from repro.cluster.vm import D2, D3
from repro.core.strategy import strategy_by_name
from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.elastic import AllocationPlanner, ControllerConfig, ElasticityController, ElasticityMonitor
from repro.engine.config import RuntimeConfig
from repro.engine.executor import ExecutorStatus
from repro.engine.runtime import TopologyRuntime
from repro.experiments.chaos import run_chaos_experiment, run_chaos_run
from repro.multi.arbiter import ScaleArbiter
from repro.reliability.repartition import PARTITIONED_STATE_KEY
from repro.reliability.statestore import checkpoint_key
from repro.sim import RandomSource, Simulator


# --------------------------------------------------------------- satellite 1
class TestRemoveVmGuard:
    def test_remove_occupied_vm_fails_loudly(self):
        cluster = Cluster()
        sim = Simulator()
        provider = CloudProvider(sim)
        vm = provider.provision(D2, 1, name_prefix="d2")[0]
        cluster.add_vm(vm)
        vm.slots[0].assign("demand_predict#0")
        with pytest.raises(ValueError, match="demand_predict#0"):
            cluster.remove_vm(vm.vm_id)
        # Still in the cluster: the guard must not half-remove it.
        assert vm.vm_id in cluster
        vm.slots[0].release()
        cluster.remove_vm(vm.vm_id)
        assert vm.vm_id not in cluster


# --------------------------------------------------------------- satellite 2
def _shared_fleet(slots: int = 4) -> Cluster:
    cluster = Cluster()
    sim = Simulator()
    provider = CloudProvider(sim)
    for vm in provider.provision(D2, slots // 2, name_prefix="d2"):
        cluster.add_vm(vm)
    return cluster


class TestArbiterAbortAccounting:
    def test_aborted_grant_returns_reservation_and_token(self):
        arbiter = ScaleArbiter(_shared_fleet(4), budget_slots=8)
        arbiter.register_tenant("t1")
        arbiter.register_tenant("t2")
        assert arbiter.propose("t1", "out", 4, now=10.0).granted
        arbiter.notify_migration_started("t1", ["d2-001"])
        # t1 holds the single migration token and 4 reserved slots: t2 is out.
        assert not arbiter.propose("t2", "out", 2, now=11.0).granted
        assert arbiter.reserved_slots() == 4
        assert "d2-001" in arbiter.retiring_vms

        returned = arbiter.notify_aborted("t1", now=12.0)
        assert returned == 4
        assert arbiter.reserved_slots() == 0
        assert arbiter.in_flight == {}
        assert arbiter.retiring_vms == set()
        assert [r.tenant_id for r in arbiter.aborts] == ["t1"]
        # The budget and the migration token are back: t2 gets through now.
        assert arbiter.propose("t2", "out", 2, now=13.0).granted

    def test_abort_without_grant_is_a_noop(self):
        arbiter = ScaleArbiter(_shared_fleet(4), budget_slots=8)
        arbiter.register_tenant("t1")
        assert arbiter.notify_aborted("t1", now=5.0) == 0
        assert arbiter.aborts == []

    def test_doomed_vms_published_and_cleared(self):
        arbiter = ScaleArbiter(_shared_fleet(4), budget_slots=8)
        arbiter.mark_doomed({"d2-001"})
        assert "d2-001" in arbiter.doomed_vms
        arbiter.clear_doomed({"d2-001"})
        assert arbiter.doomed_vms == set()


# ------------------------------------------------------------- acceptance (a)
def _assemble_chaos_stack(dag: str, seed: int = 7):
    """The chaos runner's stack, hand-assembled so tests can hook the kill."""
    reset_event_ids()
    sim = Simulator()
    dataflow = topologies.by_name(dag)
    config = RuntimeConfig.for_dsm(seed=seed)
    provider = CloudProvider(
        sim,
        spot_market=SpotMarket(discount=0.35, notice_s=120.0),
        provisioning=ProvisioningModel(base_latency_s=30.0, jitter_fraction=0.2),
        rng=RandomSource(seed),
    )
    cluster = Cluster()
    util_vm = provider.provision(D3, 1, name_prefix="util", market=ON_DEMAND)[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)
    worker_count = int(math.ceil(dataflow.total_instances() / D2.slots))
    for vm in provider.provision(D2, worker_count, name_prefix="d2", market=SPOT):
        cluster.add_vm(vm)
    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()
    controller = ElasticityController(
        runtime,
        provider,
        ElasticityMonitor(runtime, interval_s=15.0),
        AllocationPlanner(dataflow),
        strategy_by_name("dsm"),
        config=ControllerConfig(),
    )
    return sim, dataflow, cluster, provider, runtime, controller


class TestZeroNoticeKillRecovery:
    def test_kill_restores_keyed_state_from_checkpoint(self):
        sim, dataflow, cluster, provider, runtime, controller = _assemble_chaos_stack("grid-keyed")

        # Pin the kill to a VM hosting grouped keyed state.
        victim_exec = "demand_predict#0"
        slot_id = runtime.placement.assignments[victim_exec]
        victim_vm = runtime.placement.slot_to_vm[slot_id]

        captured = {}

        def on_kill(vm_id, kind):
            # Snapshot what the last committed checkpoint holds for the
            # executors about to die -- recovery must bring at least this back.
            for slot in cluster.vm(vm_id).occupied_slots:
                snap = runtime.statestore.peek(
                    checkpoint_key(dataflow.name, slot.executor_id)
                )
                if snap and snap.get("state"):
                    captured[slot.executor_id] = copy.deepcopy(snap["state"])
            controller.handle_vm_failure(vm_id, kind)

        injector = FaultInjector(sim, cluster, provider, seed=7, on_kill=on_kill)
        injector.arm(ChaosSchedule([FaultEvent(at_s=200.0, kind=KILL, vm_id=victim_vm)]))

        sim.run(until=420.0)
        runtime.stop_sources()

        assert [r.outcome for r in injector.records] == ["killed"]
        assert len(controller.recoveries) == 1
        recovery = controller.recoveries[0]
        assert victim_exec in recovery.lost_executors
        assert recovery.restored_at is not None
        assert recovery.recovery_latency_s < 120.0

        # The victim's grouped per-key counts survived: the re-placed executor
        # restored the checkpoint and kept counting from there, so every
        # checkpointed count is a floor for the live one.
        assert victim_exec in captured
        checkpointed = captured[victim_exec].get(PARTITIONED_STATE_KEY, {})
        assert checkpointed, "the pre-kill checkpoint should hold keyed counts"
        live = runtime.executors[victim_exec].state.get(PARTITIONED_STATE_KEY, {})
        for key, count in checkpointed.items():
            assert live.get(key, 0) >= count, f"by_key state lost for {key}"

        # Every executor is back up and the trees anchored on the dead VM were
        # replayed -- boundedly (not a full-stream replay storm).
        assert all(
            executor.status is ExecutorStatus.RUNNING
            for executor in runtime.executors.values()
        )
        emits = runtime.log.source_emits
        replays = sum(1 for emit in emits if emit.replay_count > 0)
        assert 0 < replays < 0.5 * len(emits)

    def test_kill_mid_evacuation_migration_is_recovered(self):
        # A 50s notice cannot cover ~30s provisioning plus a DSM migration:
        # the deadline fires while the evacuation migration is in flight and
        # the kill must degrade into the unplanned path without wedging.
        result = run_chaos_run(
            dag="grid-keyed",
            strategy="dsm",
            mode="notice",
            duration_s=420.0,
            storm_count=1,
            storm_start_s=120.0,
            notice_s=50.0,
        )
        killed = result.injector.killed
        assert len(killed) == 1
        evacuation = result.evacuations[0]
        assert evacuation.overrun
        assert evacuation.migration_issued
        assert evacuation.completed_at is not None
        assert not evacuation.evaded
        assert len(result.recoveries) == 1
        assert result.recoveries[0].restored_at is not None
        # The dataflow came back: every executor runs and the sinks kept
        # receiving after the reclaim.
        assert all(
            executor.status is ExecutorStatus.RUNNING
            for executor in result.runtime.executors.values()
        )
        kill_time = killed[0].killed_at
        assert any(receipt.time > kill_time + 60.0 for receipt in result.log.sink_receipts)


# ------------------------------------------------------------- acceptance (b)
@pytest.fixture(scope="module")
def storm_comparison():
    return run_chaos_experiment(
        dag="grid-keyed", strategy="dsm", duration_s=450.0, storm_count=2
    )


class TestNoticeBeatsOblivious:
    def test_notice_mode_wins_on_restore_latency(self, storm_comparison):
        notice = storm_comparison.notice
        oblivious = storm_comparison.oblivious
        assert oblivious.killed == storm_comparison.storm_count
        assert notice.evaded > 0
        assert notice.mean_restore_s < oblivious.mean_restore_s

    def test_notice_mode_wins_on_cost(self, storm_comparison):
        assert storm_comparison.notice.total_cost < storm_comparison.oblivious.total_cost

    def test_headline_json_roundtrip(self, storm_comparison, tmp_path):
        path = storm_comparison.write_headline_json(tmp_path / "BENCH_chaos.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro-bench-chaos/1"
        for mode in ("notice", "oblivious"):
            for metric in ("restore_s", "replays", "cost_usd"):
                assert f"chaos_{mode}_{metric}" in payload["benchmarks"]

    def test_committed_headline_artifact_shape(self):
        committed = Path(__file__).resolve().parent.parent / "results" / "BENCH_chaos.json"
        assert committed.exists(), "results/BENCH_chaos.json must ride the repo"
        payload = json.loads(committed.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro-bench-chaos/1"
        assert all("mean_s" in stats for stats in payload["benchmarks"].values())


# --------------------------------------------------------------- satellite 3
class TestChaosDeterminism:
    @pytest.mark.parametrize("strategy", ["dsm", "dcr", "ccr"])
    @pytest.mark.parametrize("mode", ["notice", "oblivious"])
    def test_same_seed_runs_are_byte_identical(self, strategy, mode):
        runs = [
            run_chaos_run(
                dag="grid-keyed",
                strategy=strategy,
                mode=mode,
                duration_s=360.0,
                storm_count=2,
                storm_start_s=100.0,
            )
            for _ in range(2)
        ]
        assert runs[0].injector.records, "the storm must actually fire"
        assert runs[0].digest() == runs[1].digest()
        assert runs[0].control_sequence() == runs[1].control_sequence()
        assert runs[0].control_sequence(), "the controller must actually react"


# --------------------------------------------------------------- satellite 6
class TestBatchStepperUnderChaos:
    def test_batch_stepping_disengages_around_faults(self):
        # Batched (non-vectorized tier) and classic keyed kernels must log the
        # same run bit-for-bit: the injected faults are cancellable timers the
        # cascade horizon sees, so the stepper falls back around each fault.
        batched = RuntimeConfig.for_ccr()
        batched.keyed_network_jitter = True
        batched.batch_stepping = True
        batched.batch_vectorize = False
        classic = RuntimeConfig.for_ccr()
        classic.keyed_network_jitter = True
        results = [
            run_chaos_run(
                dag="grid-keyed",
                strategy="ccr",
                mode="notice",
                duration_s=360.0,
                storm_count=2,
                storm_start_s=100.0,
                config=config,
            )
            for config in (batched, classic)
        ]
        assert results[0].injector.records, "the storm must actually fire"
        assert results[0].digest() == results[1].digest()
        assert results[0].control_sequence() == results[1].control_sequence()


# ------------------------------------------------------- telemetry satellite
class TestFaultTraceExport:
    def test_every_injected_fault_appears_exactly_once_in_trace(self, tmp_path):
        # FaultRecords must surface through the trace exporter: one "chaos"
        # span per injected fault, matched by injector index, no dupes.
        from repro.obs import validate_trace_jsonl, write_trace_jsonl

        result = run_chaos_run(
            dag="grid-keyed",
            strategy="dsm",
            mode="notice",
            duration_s=450.0,
            storm_count=2,
            telemetry=True,
        )
        injected = result.injector.records
        assert injected, "the storm must actually fire"
        path = write_trace_jsonl(result.telemetry, tmp_path / "trace.jsonl")
        records = validate_trace_jsonl(path)
        fault_spans = [
            r for r in records
            if r.get("type") == "span" and r.get("category") == "chaos"
        ]
        assert sorted(span["args"]["index"] for span in fault_spans) == sorted(
            record.index for record in injected
        )
        by_index = {span["args"]["index"]: span for span in fault_spans}
        assert len(by_index) == len(injected)
        for record in injected:
            span = by_index[record.index]
            assert span["name"] == f"fault.{record.event.kind}"
            assert span["args"]["kind"] == record.event.kind
            assert span["args"]["vm_id"] == record.vm_id
            assert span["args"]["outcome"] == record.outcome
