"""Parallelism elasticity: rescaling task instance counts during migration.

Covers the whole stack of the rescale feature: plan validation at the
dataflow layer, executor spawning/retiring in the runtime, the rescale hooks
of all three migration strategies (with FIELDS re-keying and grouped-state
re-partitioning), the planner's capacity-adding targets, and the
capacity-vs-placement comparison experiment.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.cluster.cloud import CloudProvider
from repro.cluster.vm import D3
from repro.core import strategy_by_name
from repro.dataflow import topologies
from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.graph import (
    DataflowValidationError,
    RescalePlan,
    exact_instance_ceiling,
)
from repro.dataflow.grouping import Grouping, stable_field_index
from repro.elastic import AllocationPlanner
from repro.engine.executor import ExecutorStatus
from repro.experiments.rescale import run_rescale_experiment
from repro.experiments.scenarios import plan_after_scaling
from repro.reliability.repartition import PARTITIONED_STATE_KEY

from tests.conftest import make_runtime, tiny_dataflow

NUM_KEYS = 7


def keyed_logic(payload, state):
    """Stateful per-key counting: the canonical grouped-state workload."""
    counts = state.setdefault(PARTITIONED_STATE_KEY, {})
    key = str(payload["key"])
    counts[key] = counts.get(key, 0) + 1
    state["processed"] = state.get("processed", 0) + 1
    return [payload]


def keyed_dataflow(rate: float = 10.0, latency_s: float = 0.02, keyed_parallelism: int = 2):
    """source -> keyed (FIELDS, stateful) -> tail -> sink."""
    builder = TopologyBuilder("keyed")
    builder.add_source(
        "source",
        rate=rate,
        payload_factory=lambda seq: {"key": f"k{seq % NUM_KEYS}", "seq": seq},
    )
    builder.add_task(
        "keyed", parallelism=keyed_parallelism, latency_s=latency_s,
        stateful=True, logic=keyed_logic,
    )
    builder.add_task("tail", parallelism=1, latency_s=latency_s)
    builder.add_sink("sink")
    builder.connect("source", "keyed", grouping=Grouping.FIELDS)
    builder.connect("keyed", "tail")
    builder.connect("tail", "sink")
    return builder.build()


def migrate_with_rescale(strategy_name, rescale, dataflow=None, migrate_at=3.0,
                         stop_at=20.0, run_until=30.0, seed=7):
    """Run a full migration with a rescale; sources stop before the end so the
    dataflow drains and loss/duplication can be asserted exactly."""
    runtime = make_runtime(
        dataflow=dataflow if dataflow is not None else keyed_dataflow(),
        strategy=strategy_name, seed=seed,
    )
    runtime.start()
    runtime.sim.run(until=migrate_at)

    provider = CloudProvider(runtime.sim)
    new_vms = provider.provision(D3, 2, name_prefix="target")
    for vm in new_vms:
        runtime.cluster.add_vm(vm)
    vm_ids = [vm.vm_id for vm in new_vms]

    strategy = strategy_by_name(strategy_name)(runtime, init_resend_interval_s=0.2)
    report = strategy.migrate(
        lambda rt: plan_after_scaling(rt, vm_ids),
        rescale=rescale,
    )
    runtime.sim.run(until=stop_at)
    runtime.stop_sources()
    runtime.sim.run(until=run_until)
    return runtime, report


class TestRescalePlanValidation:
    def test_unknown_task_rejected(self):
        with pytest.raises(DataflowValidationError):
            RescalePlan({"ghost": 2}).validate(tiny_dataflow())

    def test_source_and_sink_rejected(self):
        dataflow = tiny_dataflow()
        with pytest.raises(DataflowValidationError):
            RescalePlan({"source": 2}).validate(dataflow)
        with pytest.raises(DataflowValidationError):
            RescalePlan({"sink": 2}).validate(dataflow)

    def test_nonpositive_parallelism_rejected(self):
        with pytest.raises(DataflowValidationError):
            RescalePlan({"a": 0}).validate(tiny_dataflow())

    def test_changes_and_noop(self):
        dataflow = tiny_dataflow()  # a:1, b:2, c:1
        plan = RescalePlan({"a": 1, "b": 3})
        assert plan.changes(dataflow) == {"b": (2, 3)}
        assert not plan.is_noop(dataflow)
        assert RescalePlan({"b": 2}).is_noop(dataflow)

    def test_set_parallelism_validates(self):
        dataflow = tiny_dataflow()
        dataflow.set_parallelism("b", 4)
        assert dataflow.task("b").parallelism == 4
        with pytest.raises(DataflowValidationError):
            dataflow.set_parallelism("source", 2)
        with pytest.raises(DataflowValidationError):
            dataflow.set_parallelism("b", 0)


class TestExactCeiling:
    def test_exact_multiples_do_not_round_up(self):
        assert exact_instance_ceiling(24.0, 8.0) == 3
        assert exact_instance_ceiling(8.0, 8.0) == 1

    def test_partial_instance_rounds_up(self):
        assert exact_instance_ceiling(24.1, 8.0) == 4
        assert exact_instance_ceiling(0.01, 8.0) == 1

    def test_zero_rate_needs_nothing(self):
        assert exact_instance_ceiling(0.0, 8.0) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            exact_instance_ceiling(8.0, 0.0)

    def test_summed_branch_rates_stay_exact(self):
        """Three 8 ev/s branches fan into one task: exactly 3 instances, not 4."""
        builder = TopologyBuilder("fan3")
        builder.add_source("src", rate=8.0)
        for name in ("a", "b", "c"):
            builder.add_task(name)
        builder.add_task("merge")
        builder.add_sink("sink")
        builder.fan_out("src", ["a", "b", "c"])
        builder.fan_in(["a", "b", "c"], "merge")
        builder.connect("merge", "sink")
        dataflow = builder.build(auto_parallelism=True, events_per_instance=8.0)
        assert dataflow.task("merge").parallelism == 3


class TestRuntimeApplyRescale:
    def test_grow_spawns_starting_executors(self):
        runtime = make_runtime(dataflow=keyed_dataflow())
        record = runtime.apply_rescale(RescalePlan({"keyed": 4}))
        assert record.changes == {"keyed": (2, 4)}
        assert record.spawned == ["keyed#2", "keyed#3"]
        assert runtime.dataflow.task("keyed").parallelism == 4
        for executor_id in record.spawned:
            assert runtime.executors[executor_id].status is ExecutorStatus.STARTING
        assert record.restarting == {"keyed#0", "keyed#1"}

    def test_shrink_retires_and_releases_slots(self):
        runtime = make_runtime(dataflow=keyed_dataflow())
        old_slot = runtime.placement.assignments["keyed#1"]
        record = runtime.apply_rescale(RescalePlan({"keyed": 1}))
        assert record.retired == ["keyed#1"]
        assert "keyed#1" not in runtime.executors
        assert "keyed#1" not in runtime.placement.assignments
        assert runtime.cluster.find_slot(old_slot).executor_id is None
        assert runtime.dataflow.task("keyed").parallelism == 1

    def test_rescale_before_deploy_rejected(self):
        from repro.engine.runtime import RuntimeError_, TopologyRuntime
        from repro.sim import Simulator
        from tests.conftest import build_cluster, fast_config

        sim = Simulator()
        runtime = TopologyRuntime(keyed_dataflow(), build_cluster(sim), sim=sim,
                                  config=fast_config())
        with pytest.raises(RuntimeError_):
            runtime.apply_rescale(RescalePlan({"keyed": 3}))

    def test_stale_plan_after_grow_rejected(self):
        """A placement plan computed before a grow no longer covers the
        executor set; rebalancing with it must fail loudly, not wedge."""
        from repro.engine.runtime import RuntimeError_

        runtime = make_runtime(dataflow=keyed_dataflow())
        runtime.start()
        runtime.sim.run(until=2.0)
        provider = CloudProvider(runtime.sim)
        new_vms = provider.provision(D3, 2, name_prefix="target")
        for vm in new_vms:
            runtime.cluster.add_vm(vm)
        stale_plan = plan_after_scaling(runtime, [vm.vm_id for vm in new_vms])
        runtime.apply_rescale(RescalePlan({"keyed": 4}))
        with pytest.raises(RuntimeError_, match="keyed#2"):
            runtime.rebalance(stale_plan)

    def test_noop_rescale_keeps_routing_targets(self):
        """Same key -> same instance before and after a no-op rescale."""
        runtime = make_runtime(dataflow=keyed_dataflow())
        router = runtime.router
        edge = runtime.dataflow.out_edges("source")[0]

        class _Probe:
            payload = {"key": "k3"}

        before = router._select_targets("source#0", edge, _Probe())
        runtime.apply_rescale(RescalePlan({"keyed": 2}))  # no-op
        after = router._select_targets("source#0", edge, _Probe())
        assert before == after
        assert before[0] == f"keyed#{stable_field_index('k3', 2)}"

    def test_rekeying_uses_new_instance_count(self):
        runtime = make_runtime(dataflow=keyed_dataflow())
        runtime.apply_rescale(RescalePlan({"keyed": 5}))
        router = runtime.router
        edge = runtime.dataflow.out_edges("source")[0]
        for key in (f"k{i}" for i in range(NUM_KEYS)):
            class _Probe:
                payload = {"key": key}

            target = router._select_targets("source#0", edge, _Probe())[0]
            assert target == f"keyed#{stable_field_index(key, 5)}"


class TestStrategyRescale:
    @pytest.mark.parametrize("strategy", ["dcr", "ccr"])
    @pytest.mark.parametrize("new_parallelism", [3, 1])
    def test_exactly_once_across_rescale(self, strategy, new_parallelism):
        """DCR/CCR: no event loss and no duplication across a grow or shrink."""
        runtime, report = migrate_with_rescale(strategy, RescalePlan({"keyed": new_parallelism}))
        assert report.is_complete
        assert report.rescale_record is not None
        assert runtime.dataflow.task("keyed").parallelism == new_parallelism

        emitted = [e.root_id for e in runtime.log.source_emits]
        received = [r.root_id for r in runtime.log.sink_receipts]
        duplicates = [root for root, count in Counter(received).items() if count > 1]
        assert not duplicates, f"duplicated roots: {duplicates[:5]}"
        assert sorted(received) == sorted(set(emitted))

    @pytest.mark.parametrize("strategy", ["dcr", "ccr"])
    def test_state_affinity_and_conservation(self, strategy):
        """After a grow, every keyed-state entry lives on the instance that
        FIELDS routing sends its key to, and no count was lost or doubled."""
        runtime, _ = migrate_with_rescale(strategy, RescalePlan({"keyed": 3}))
        total_counts: Counter = Counter()
        for index in range(3):
            executor = runtime.executors[f"keyed#{index}"]
            counts = executor.state.get(PARTITIONED_STATE_KEY, {})
            for key, count in counts.items():
                assert stable_field_index(key, 3) == index, (key, index)
                total_counts[key] += count
        # Every receipt passed through `keyed` exactly once and incremented
        # its key's counter exactly once (1:1 selectivity end to end).
        assert sum(total_counts.values()) == len(runtime.log.sink_receipts)

    def test_dsm_rescale_at_least_once(self):
        """DSM: lost in-flight events are replayed; every root is eventually
        delivered despite the immediate kill-and-rekey."""
        runtime, report = migrate_with_rescale(
            "dsm", RescalePlan({"keyed": 3}), migrate_at=6.0, stop_at=25.0, run_until=60.0
        )
        assert report.is_complete
        assert runtime.dataflow.task("keyed").parallelism == 3
        emitted_roots = {e.root_id for e in runtime.log.source_emits}
        received_roots = {r.root_id for r in runtime.log.sink_receipts}
        assert received_roots == emitted_roots

    def test_noop_rescale_records_nothing(self):
        runtime, report = migrate_with_rescale("dcr", RescalePlan({"keyed": 2}))
        assert report.is_complete
        assert report.rescale_record is None
        assert not runtime.rescales

    def test_plain_placement_plan_still_accepted(self):
        """The old call shape (a ready PlacementPlan, no rescale) is untouched."""
        runtime = make_runtime(dataflow=keyed_dataflow())
        runtime.start()
        runtime.sim.run(until=3.0)
        provider = CloudProvider(runtime.sim)
        new_vms = provider.provision(D3, 2, name_prefix="target")
        for vm in new_vms:
            runtime.cluster.add_vm(vm)
        plan = plan_after_scaling(runtime, [vm.vm_id for vm in new_vms])
        strategy = strategy_by_name("dcr")(runtime, init_resend_interval_s=0.2)
        report = strategy.migrate(plan)
        runtime.sim.run(until=25.0)
        assert report.is_complete and report.rescale_record is None


class TestPlannerRescale:
    def test_required_instances_by_task_at_surge(self):
        planner = AllocationPlanner(topologies.traffic())
        required = planner.required_instances_by_task(16.0)
        assert required["parse_gps"] == 2
        assert required["traffic_state"] == 6  # 24 ev/s baseline doubled / 8

    def test_per_task_capacity_mapping_wins(self):
        planner = AllocationPlanner(
            topologies.traffic(), task_capacities_ev_s={"parse_gps": 16.0}
        )
        assert planner.required_instances_by_task(16.0)["parse_gps"] == 1

    def test_task_declared_capacity_honoured(self):
        builder = TopologyBuilder("hetero")
        builder.add_source("source", rate=8.0)
        builder.add_task("fast", capacity_ev_s=32.0)
        builder.add_task("slow", capacity_ev_s=2.0)
        builder.add_sink("sink")
        builder.chain("source", "fast", "slow", "sink")
        planner = AllocationPlanner(builder.build())
        required = planner.required_instances_by_task(8.0)
        assert required == {"fast": 1, "slow": 4}

    def test_capacity_mapping_validated(self):
        with pytest.raises(ValueError):
            AllocationPlanner(topologies.traffic(), task_capacities_ev_s={"ghost": 8.0})
        with pytest.raises(ValueError):
            AllocationPlanner(topologies.traffic(), task_capacities_ev_s={"parse_gps": 0.0})

    def test_default_plan_matches_paper_behaviour(self):
        """Without elastic parallelism, plan() is exactly the PR-1 behaviour."""
        planner = AllocationPlanner(topologies.traffic())
        target = planner.plan(24.0)
        assert target.tier == "expanded"
        assert target.rescale is None
        assert target.hosted_slots == 13  # deployed slots, not demand

    def test_elastic_plan_carries_rescale_and_sizes_vms_for_demand(self):
        planner = AllocationPlanner(topologies.traffic(), elastic_parallelism=True)
        target = planner.plan(24.0, current_tier="baseline")
        assert target.tier == "expanded"
        assert target.rescale is not None
        assert target.hosted_slots == target.required_instances > 13
        assert target.vm_counts == {"D1": target.required_instances}

    def test_elastic_plan_in_band_keeps_current_tier(self):
        dataflow = topologies.traffic()
        planner = AllocationPlanner(dataflow, elastic_parallelism=True)
        # Rescale the dataflow to exactly the 16 ev/s demand, as a completed
        # scale-out would have.
        for name, count in planner.required_instances_by_task(16.0).items():
            dataflow.set_parallelism(name, count)
        target = planner.plan(16.0, current_tier="expanded")
        assert target.tier == "expanded"
        assert target.rescale is None

    def test_second_surge_rescales_within_same_tier(self):
        """Demand growth on an already-expanded deployment still adds capacity:
        the tier label does not change, but the plan carries a rescale."""
        dataflow = topologies.traffic()
        planner = AllocationPlanner(dataflow, elastic_parallelism=True)
        for name, count in planner.required_instances_by_task(16.0).items():
            dataflow.set_parallelism(name, count)
        target = planner.plan(32.0, current_tier="expanded")
        assert target.tier == "expanded"
        assert target.rescale is not None
        assert target.hosted_slots == planner.required_instances(32.0)
        assert target.rescale.targets["traffic_state"] == 12

    def test_rescale_plan_none_when_matched(self):
        planner = AllocationPlanner(topologies.traffic(), elastic_parallelism=True)
        assert planner.rescale_plan(8.0) is None
        plan = planner.rescale_plan(16.0)
        assert plan is not None and plan.targets["traffic_state"] == 6


class TestRescaleExperiment:
    def test_capacity_adding_beats_placement_only_on_grid_surge(self):
        """Acceptance: grid + 2x surge -> strictly lower sink latency and
        backlog with capacity-adding rescale than with placement-only
        scaling, with the rescale actually enacted."""
        result = run_rescale_experiment(
            dag="grid", strategy="ccr", surge_multiplier=2.0, duration_s=480.0
        )
        capacity, placement = result.capacity, result.placement

        # The capacity run rescaled (21 -> 42 instances); the placement run
        # kept the paper's fixed executor set.
        first = capacity.result.actions[0]
        assert first.target.rescale is not None
        assert sum(first.target.rescale.targets.values()) == 42
        assert placement.result.actions and placement.result.actions[0].target.rescale is None
        assert placement.final_instances == 21

        # Drain-aware scale-in (no run-length cooldown pinning any more): once
        # the capacity run absorbed the surge backlog it consolidated again,
        # strictly after the surge window ended; the placement run's stranded
        # backlog keeps its scale-in vetoed to the end of the run.
        assert len(capacity.result.actions) >= 2
        last = capacity.result.actions[-1]
        assert last.direction == "in"
        assert last.decided_at > result.surge_end_s
        assert len(placement.result.actions) == 1

        assert capacity.mean_sink_latency_s < placement.mean_sink_latency_s
        assert capacity.peak_backlog < placement.peak_backlog
        assert capacity.final_backlog < placement.final_backlog
        assert result.capacity_wins
        assert result.latency_improvement > 1.5
