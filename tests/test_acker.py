"""Unit tests for the XOR-based acknowledgment service."""

from __future__ import annotations

import pytest

from repro.reliability.acker import AckerService
from repro.sim import Simulator


def make_acker(sim, timeout=30.0):
    completed = []
    failed = []
    acker = AckerService(sim, timeout_s=timeout, on_complete=completed.append, on_fail=failed.append)
    return acker, completed, failed


class TestCompletion:
    def test_single_event_tree_completes(self, sim):
        acker, completed, failed = make_acker(sim)
        acker.register(100)
        acker.anchor(100, 1)
        acker.ack(100, 1)
        assert completed == [100]
        assert failed == []
        assert not acker.is_pending(100)

    def test_linear_chain_completes(self, sim):
        acker, completed, _ = make_acker(sim)
        acker.register(100)
        acker.anchor(100, 1)
        acker.anchor(100, 2)
        acker.ack(100, 1)
        assert completed == []
        acker.ack(100, 2)
        assert completed == [100]

    def test_fanout_tree_completes_only_when_all_acked(self, sim):
        acker, completed, _ = make_acker(sim)
        acker.register(100)
        event_ids = [11, 22, 33, 44]
        for event_id in event_ids:
            acker.anchor(100, event_id)
        for event_id in event_ids[:-1]:
            acker.ack(100, event_id)
        assert completed == []
        acker.ack(100, event_ids[-1])
        assert completed == [100]

    def test_interleaved_anchor_and_ack(self, sim):
        acker, completed, _ = make_acker(sim)
        acker.register(100)
        acker.anchor(100, 1)
        acker.ack(100, 1)
        # A new anchor after the hash returned to zero would have completed the
        # tree already; completion fires once.
        assert completed == [100]

    def test_completion_cancels_timeout(self, sim):
        acker, completed, failed = make_acker(sim, timeout=10.0)
        acker.register(100)
        acker.anchor(100, 1)
        acker.ack(100, 1)
        sim.run(until=60.0)
        assert completed == [100]
        assert failed == []

    def test_multiple_roots_tracked_independently(self, sim):
        acker, completed, _ = make_acker(sim)
        acker.register(1)
        acker.register(2)
        acker.anchor(1, 10)
        acker.anchor(2, 20)
        acker.ack(2, 20)
        assert completed == [2]
        assert acker.is_pending(1)


class TestFailure:
    def test_timeout_fails_incomplete_tree(self, sim):
        acker, completed, failed = make_acker(sim, timeout=5.0)
        acker.register(100)
        acker.anchor(100, 1)
        sim.run(until=10.0)
        assert failed == [100]
        assert completed == []
        assert acker.stats.failed == 1

    def test_tree_with_no_anchors_fails_on_timeout(self, sim):
        acker, _, failed = make_acker(sim, timeout=5.0)
        acker.register(100)
        sim.run(until=10.0)
        assert failed == [100]

    def test_explicit_fail(self, sim):
        acker, _, failed = make_acker(sim)
        acker.register(100)
        acker.fail(100)
        assert failed == [100]
        assert not acker.is_pending(100)

    def test_ack_after_failure_is_counted_late(self, sim):
        acker, _, failed = make_acker(sim, timeout=5.0)
        acker.register(100)
        acker.anchor(100, 1)
        sim.run(until=10.0)
        acker.ack(100, 1)
        assert failed == [100]
        assert acker.stats.late_acks == 1

    def test_reregistration_after_failure_allows_replay_to_complete(self, sim):
        acker, completed, failed = make_acker(sim, timeout=5.0)
        acker.register(100)
        acker.anchor(100, 1)
        sim.run(until=6.0)
        assert failed == [100]
        # Replay: register the same root again and complete it this time.
        acker.register(100)
        acker.anchor(100, 2)
        acker.ack(100, 2)
        assert completed == [100]

    def test_failed_roots_recorded(self, sim):
        acker, _, _ = make_acker(sim, timeout=2.0)
        for root in (1, 2, 3):
            acker.register(root)
        sim.run(until=5.0)
        assert sorted(acker.failed_roots) == [1, 2, 3]


class TestMaintenance:
    def test_invalid_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            AckerService(sim, timeout_s=0.0)

    def test_ack_for_unknown_root_is_ignored(self, sim):
        acker, completed, failed = make_acker(sim)
        acker.ack(999, 1)
        acker.anchor(999, 1)
        assert completed == []
        assert failed == []

    def test_flush_drops_pending_without_failing(self, sim):
        acker, _, failed = make_acker(sim, timeout=5.0)
        for root in (1, 2):
            acker.register(root)
        dropped = acker.flush()
        sim.run(until=10.0)
        assert dropped == 2
        assert failed == []
        assert acker.pending_count == 0

    def test_stats_counters(self, sim):
        acker, _, _ = make_acker(sim)
        acker.register(1)
        acker.anchor(1, 5)
        acker.ack(1, 5)
        assert acker.stats.registered == 1
        assert acker.stats.anchors == 1
        assert acker.stats.acks == 1
        assert acker.stats.completed == 1
