"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.placement import PlacementPlan, placement_diff
from repro.cluster.scheduler import RoundRobinScheduler
from repro.cluster.vm import D2
from repro.dataflow.builder import TopologyBuilder
from repro.metrics.log import EventLog
from repro.metrics.timeline import rate_timeline
from repro.reliability.acker import AckerService
from repro.sim import RandomSource, Simulator


# --------------------------------------------------------------------- kernel
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_simulator_executes_events_in_nondecreasing_time_order(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert sim.now == max(delays)


@given(
    period=st.floats(min_value=0.1, max_value=10.0),
    horizon=st.floats(min_value=1.0, max_value=100.0),
)
@settings(max_examples=50, deadline=None)
def test_periodic_timer_fire_count_matches_period(period, horizon):
    sim = Simulator()
    timer = sim.every(period, lambda: None)
    sim.run(until=horizon)
    # Floating-point accumulation of the period may shift the last firing
    # across the horizon, so allow off-by-one.
    assert abs(timer.fire_count - horizon / period) <= 1.0


# ----------------------------------------------------------------------- acker
@given(event_ids=st.lists(st.integers(min_value=1, max_value=2**62), min_size=1, max_size=100, unique=True))
@settings(max_examples=100, deadline=None)
def test_acker_completes_iff_every_anchored_event_is_acked(event_ids):
    sim = Simulator()
    completed = []
    acker = AckerService(sim, timeout_s=1000.0, on_complete=completed.append)
    acker.register(777)
    for event_id in event_ids:
        acker.anchor(777, event_id)
    for event_id in event_ids[:-1]:
        acker.ack(777, event_id)
    assert completed == []
    acker.ack(777, event_ids[-1])
    assert completed == [777]


@given(
    event_ids=st.lists(st.integers(min_value=1, max_value=2**62), min_size=2, max_size=60, unique=True),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_acker_does_not_complete_with_any_missing_ack(event_ids, data):
    """Dropping any single ack keeps the tree pending (XOR collisions aside, ids are unique)."""
    missing = data.draw(st.sampled_from(event_ids))
    sim = Simulator()
    completed = []
    acker = AckerService(sim, timeout_s=1000.0, on_complete=completed.append)
    acker.register(1)
    for event_id in event_ids:
        acker.anchor(1, event_id)
    for event_id in event_ids:
        if event_id != missing:
            acker.ack(1, event_id)
    assert completed == []
    assert acker.is_pending(1)


# ------------------------------------------------------------------ placement
@given(
    n_executors=st.integers(min_value=1, max_value=12),
    n_vms=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_round_robin_schedule_is_a_valid_assignment(n_executors, n_vms, seed):
    sim = Simulator()
    provider = CloudProvider(sim)
    cluster = Cluster(provider.provision(D2, n_vms))
    executors = [f"t{i}#0" for i in range(n_executors)]
    scheduler = RoundRobinScheduler()
    if n_executors > cluster.total_slots:
        return  # covered by the explicit error test
    plan = scheduler.schedule(executors, cluster)
    # Every executor placed exactly once, on distinct slots that exist.
    assert sorted(plan.executors) == sorted(executors)
    slots = list(plan.assignments.values())
    assert len(slots) == len(set(slots))
    for slot_id in slots:
        cluster.find_slot(slot_id)
    # Round-robin balance: VM loads differ by at most one when slots allow it.
    loads = [len(plan.executors_on_vm(vm.vm_id)) for vm in cluster.vms]
    if n_executors <= n_vms:
        assert max(loads) <= 1


@given(
    executors=st.lists(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=10, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_placement_diff_partitions_new_plan_executors(executors):
    old = PlacementPlan()
    new = PlacementPlan()
    for index, executor in enumerate(executors):
        old.assign(executor, f"vm{index % 3}:slot{index}", f"vm{index % 3}")
    for index, executor in enumerate(executors):
        # Move every other executor to a different slot.
        if index % 2 == 0:
            new.assign(executor, f"vm{(index + 1) % 3}:slot{index + 100}", f"vm{(index + 1) % 3}")
        else:
            new.assign(executor, f"vm{index % 3}:slot{index}", f"vm{index % 3}")
    migrating, staying, new_only = placement_diff(old, new)
    assert migrating | staying | new_only == set(new.executors)
    assert migrating & staying == set()
    assert new_only == set()


# ------------------------------------------------------------------- dataflow
@given(chain_length=st.integers(min_value=1, max_value=30), rate=st.floats(min_value=1.0, max_value=64.0))
@settings(max_examples=50, deadline=None)
def test_chain_dataflow_rate_is_conserved(chain_length, rate):
    builder = TopologyBuilder("chain")
    builder.add_source("src", rate=rate)
    names = [f"t{i}" for i in range(chain_length)]
    for name in names:
        builder.add_task(name)
    builder.add_sink("sink")
    builder.chain("src", *names, "sink")
    dataflow = builder.build()
    rates = dataflow.input_rates()
    for name in names:
        assert abs(rates[name] - rate) < 1e-9
    assert abs(dataflow.output_rate() - rate) < 1e-9
    assert dataflow.critical_path_length() == chain_length


@given(
    fanout=st.integers(min_value=1, max_value=6),
    rate=st.floats(min_value=1.0, max_value=32.0),
    events_per_instance=st.floats(min_value=1.0, max_value=16.0),
)
@settings(max_examples=50, deadline=None)
def test_auto_parallelism_covers_input_rate(fanout, rate, events_per_instance):
    builder = TopologyBuilder("fan")
    builder.add_source("src", rate=rate)
    builder.add_task("split")
    branches = [f"b{i}" for i in range(fanout)]
    for name in branches:
        builder.add_task(name)
    builder.add_task("merge")
    builder.add_sink("sink")
    builder.connect("src", "split")
    builder.fan_out("split", branches)
    builder.fan_in(branches, "merge")
    builder.connect("merge", "sink")
    dataflow = builder.build(auto_parallelism=True, events_per_instance=events_per_instance)
    rates = dataflow.input_rates()
    for task in dataflow.user_tasks:
        capacity = task.parallelism * events_per_instance
        assert capacity + 1e-6 >= rates[task.name]
        # Never over-provision by more than one instance.
        assert (task.parallelism - 1) * events_per_instance < rates[task.name] + 1e-6


# -------------------------------------------------------------------- metrics
@given(times=st.lists(st.floats(min_value=0.0, max_value=99.0), min_size=0, max_size=300))
@settings(max_examples=60, deadline=None)
def test_rate_timeline_conserves_event_count(times):
    sim = Simulator()
    log = EventLog(sim)
    for index, time in enumerate(sorted(times)):
        sim.schedule_at(time, lambda: None)
        sim.run()
        log.record_sink_receipt(index, index, "sink", root_emitted_at=max(0.0, time - 1.0), replay_count=0)
    points = rate_timeline(log, kind="output", start=0.0, end=100.0, bin_s=1.0)
    assert sum(p.rate * 1.0 for p in points) == len(times)


@given(seed=st.integers(min_value=0, max_value=10_000), name=st.text(min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_random_source_streams_are_reproducible(seed, name):
    first = [RandomSource(seed).uniform(name, 0.0, 1.0) for _ in range(3)]
    second = [RandomSource(seed).uniform(name, 0.0, 1.0) for _ in range(3)]
    assert first == second
    assert all(0.0 <= value <= 1.0 for value in first)
