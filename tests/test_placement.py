"""Unit tests for placement plans and plan diffing."""

from __future__ import annotations

import pytest

from repro.cluster.placement import PlacementPlan, placement_diff


def make_plan(assignments):
    plan = PlacementPlan()
    for executor_id, (slot_id, vm_id) in assignments.items():
        plan.assign(executor_id, slot_id, vm_id)
    return plan


class TestPlacementPlan:
    def test_assign_and_lookup(self):
        plan = make_plan({"a#0": ("vm1:slot0", "vm1"), "b#0": ("vm2:slot0", "vm2")})
        assert plan.slot_of("a#0") == "vm1:slot0"
        assert plan.vm_of("b#0") == "vm2"
        assert len(plan) == 2
        assert "a#0" in plan
        assert "z#0" not in plan

    def test_duplicate_executor_rejected(self):
        plan = make_plan({"a#0": ("vm1:slot0", "vm1")})
        with pytest.raises(ValueError):
            plan.assign("a#0", "vm1:slot1", "vm1")

    def test_duplicate_slot_rejected(self):
        plan = make_plan({"a#0": ("vm1:slot0", "vm1")})
        with pytest.raises(ValueError):
            plan.assign("b#0", "vm1:slot0", "vm1")

    def test_vms_used_and_executors_on_vm(self):
        plan = make_plan(
            {"a#0": ("vm1:slot0", "vm1"), "b#0": ("vm1:slot1", "vm1"), "c#0": ("vm2:slot0", "vm2")}
        )
        assert plan.vms_used == {"vm1", "vm2"}
        assert sorted(plan.executors_on_vm("vm1")) == ["a#0", "b#0"]
        assert plan.executors_on_vm("vm3") == []

    def test_copy_is_independent(self):
        plan = make_plan({"a#0": ("vm1:slot0", "vm1")})
        clone = plan.copy()
        clone.assign("b#0", "vm1:slot1", "vm1")
        assert "b#0" not in plan
        assert "b#0" in clone


class TestPlacementDiff:
    def test_classifies_migrating_staying_and_new(self):
        old = make_plan({"a#0": ("vm1:slot0", "vm1"), "b#0": ("vm1:slot1", "vm1")})
        new = make_plan(
            {"a#0": ("vm2:slot0", "vm2"), "b#0": ("vm1:slot1", "vm1"), "c#0": ("vm2:slot1", "vm2")}
        )
        migrating, staying, new_executors = placement_diff(old, new)
        assert migrating == {"a#0"}
        assert staying == {"b#0"}
        assert new_executors == {"c#0"}

    def test_identical_plans_have_no_migrations(self):
        plan = make_plan({"a#0": ("vm1:slot0", "vm1")})
        migrating, staying, new_executors = placement_diff(plan, plan.copy())
        assert migrating == set()
        assert staying == {"a#0"}
        assert new_executors == set()

    def test_full_migration(self):
        old = make_plan({"a#0": ("vm1:slot0", "vm1"), "b#0": ("vm1:slot1", "vm1")})
        new = make_plan({"a#0": ("vm2:slot0", "vm2"), "b#0": ("vm2:slot1", "vm2")})
        migrating, staying, _ = placement_diff(old, new)
        assert migrating == {"a#0", "b#0"}
        assert staying == set()
