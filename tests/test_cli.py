"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_describe_arguments(self):
        args = build_parser().parse_args(["describe", "grid"])
        assert args.command == "describe"
        assert args.dag == "grid"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.dag == "grid"
        assert args.strategy == "ccr"
        assert args.scaling == "in"
        assert args.migrate_at == 90.0

    def test_unknown_dag_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "unknown-dag"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig42"])


class TestCommands:
    def test_describe_prints_topology(self, capsys):
        exit_code = main(["describe", "star"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "hub" in output
        assert "spoke_in_a" in output

    def test_figure_table1(self, capsys):
        exit_code = main(["figure", "table1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "grid" in output and "21" in output

    def test_figure_statestore(self, capsys):
        exit_code = main(["figure", "statestore"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "2000" in output

    def test_experiment_command_runs_quickly_with_small_window(self, capsys):
        exit_code = main([
            "experiment", "--dag", "linear", "--strategy", "ccr", "--scaling", "in",
            "--migrate-at", "30", "--duration", "120", "--seed", "5",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "restore_s" in output
        assert "Protocol phases" in output

    def test_figure_fig5_with_subset_of_dags(self, capsys):
        exit_code = main([
            "figure", "fig5", "--scaling", "in", "--dags", "linear",
            "--migrate-at", "30", "--duration", "150", "--seed", "5",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "linear" in output
        assert "dsm" in output and "ccr" in output
