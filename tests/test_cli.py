"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_describe_arguments(self):
        args = build_parser().parse_args(["describe", "grid"])
        assert args.command == "describe"
        assert args.dag == "grid"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.dag == "grid"
        assert args.strategy == "ccr"
        assert args.scaling == "in"
        assert args.migrate_at == 90.0

    def test_unknown_dag_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "unknown-dag"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig42"])


class TestCommands:
    def test_describe_prints_topology(self, capsys):
        exit_code = main(["describe", "star"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "hub" in output
        assert "spoke_in_a" in output

    def test_figure_table1(self, capsys):
        exit_code = main(["figure", "table1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "grid" in output and "21" in output

    def test_figure_statestore(self, capsys):
        exit_code = main(["figure", "statestore"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "2000" in output

    def test_experiment_command_runs_quickly_with_small_window(self, capsys):
        exit_code = main([
            "experiment", "--dag", "linear", "--strategy", "ccr", "--scaling", "in",
            "--migrate-at", "30", "--duration", "120", "--seed", "5",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "restore_s" in output
        assert "Protocol phases" in output

    def test_figure_fig5_with_subset_of_dags(self, capsys):
        exit_code = main([
            "figure", "fig5", "--scaling", "in", "--dags", "linear",
            "--migrate-at", "30", "--duration", "150", "--seed", "5",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "linear" in output
        assert "dsm" in output and "ccr" in output


class TestMultiCommand:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["multi"])
        assert args.command == "multi"
        assert args.dags == "traffic,grid"
        assert args.strategy == "ccr"
        assert args.budget is None
        assert not args.placement_only
        assert not args.no_baseline

    def test_unknown_dag_rejected(self, capsys):
        from repro.cli import main

        exit_code = main(["multi", "--dags", "traffic,atlantis"])
        assert exit_code == 2
        assert "atlantis" in capsys.readouterr().err

    def test_priorities_must_match_dag_count(self, capsys):
        from repro.cli import main

        exit_code = main(["multi", "--dags", "traffic,linear", "--priorities", "1"])
        assert exit_code == 2
        assert "priorities" in capsys.readouterr().err

    def test_multi_command_runs_end_to_end(self, capsys):
        from repro.cli import main

        exit_code = main([
            "multi", "--dags", "linear,diamond", "--strategy", "ccr",
            "--duration", "300", "--surge", "2", "--seed", "7",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Tenants" in output
        assert "Arbitration" in output
        assert "peak committed slots" in output
        assert "vs" in output  # private-baseline comparison columns

    def test_keyed_dags_accepted(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["elastic", "--dag", "traffic-keyed"])
        assert args.dag == "traffic-keyed"
        args = build_parser().parse_args(["rescale", "--dag", "grid-keyed"])
        assert args.dag == "grid-keyed"

    def test_figure_jobs_flag(self):
        from repro.cli import build_parser

        assert build_parser().parse_args(["figure", "fig5"]).jobs == 1
        assert build_parser().parse_args(["figure", "fig5", "--jobs", "0"]).jobs == 0
