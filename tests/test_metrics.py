"""Unit tests for the event log, timelines, stabilization detector and §4 metrics."""

from __future__ import annotations

import pytest

from repro.core.metrics import compute_migration_metrics
from repro.core.strategy import MigrationReport
from repro.metrics.log import EventLog
from repro.metrics.timeline import latency_timeline, rate_timeline, stabilization_time
from repro.sim import Simulator


def make_log(sim=None):
    return EventLog(sim if sim is not None else Simulator())


def advance(sim, to):
    sim.schedule_at(to, lambda: None)
    sim.run()


class TestEventLog:
    def test_source_emit_records_first_emission_time(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_source_emit(1, "src")
        advance(sim, 10.0)
        log.record_source_emit(1, "src", replay_count=1)
        assert log.root_first_emit_time(1) == 0.0
        assert log.replay_emits == 1

    def test_is_old_root_uses_first_emission(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_source_emit(1, "src")
        advance(sim, 100.0)
        log.record_source_emit(2, "src")
        assert log.is_old_root(1, migration_time=50.0)
        assert not log.is_old_root(2, migration_time=50.0)
        assert not log.is_old_root(999, migration_time=50.0)

    def test_sink_receipt_latency(self):
        sim = Simulator()
        log = make_log(sim)
        advance(sim, 5.0)
        log.record_sink_receipt(1, 11, "sink", root_emitted_at=4.0, replay_count=0)
        assert log.sink_receipts[0].latency_s == pytest.approx(1.0)

    def test_first_receipt_after(self):
        sim = Simulator()
        log = make_log(sim)
        for t in (1.0, 2.0, 3.0):
            advance(sim, t)
            log.record_sink_receipt(int(t), int(t) * 10, "sink", root_emitted_at=t - 0.5, replay_count=0)
        receipt = log.first_receipt_after(1.5)
        assert receipt is not None and receipt.time == pytest.approx(2.0)
        assert log.first_receipt_after(10.0) is None

    def test_last_old_receipt_and_last_replay_receipt(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_source_emit(1, "src")
        log.record_source_emit(2, "src")
        advance(sim, 100.0)
        log.record_source_emit(3, "src")
        advance(sim, 110.0)
        log.record_sink_receipt(1, 10, "sink", root_emitted_at=0.0, replay_count=0)
        advance(sim, 120.0)
        log.record_sink_receipt(2, 20, "sink", root_emitted_at=0.0, replay_count=1)
        advance(sim, 130.0)
        log.record_sink_receipt(3, 30, "sink", root_emitted_at=100.0, replay_count=0)
        last_old = log.last_old_receipt(migration_time=50.0)
        assert last_old is not None and last_old.root_id == 2
        last_replay = log.last_replay_receipt(migration_time=50.0)
        assert last_replay is not None and last_replay.root_id == 2

    def test_drop_kill_and_lifecycle_records(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_drop("a#0", "data", "killed", root_id=5)
        log.record_kill("a#0", queued_events_lost=3, pending_events_lost=1)
        log.record_lifecycle("a#0", "killed")
        assert log.dropped_count() == 1
        assert log.dropped_count("data") == 1
        assert log.dropped_count("checkpoint") == 0
        assert log.lost_in_kills() == 3
        assert log.lifecycle[0].status == "killed"

    def test_summary_counts(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_source_emit(1, "src")
        log.record_sink_receipt(1, 10, "sink", root_emitted_at=0.0, replay_count=0)
        summary = log.summary()
        assert summary["source_emits"] == 1
        assert summary["sink_receipts"] == 1
        assert summary["distinct_roots_received"] == 1


class TestTimelines:
    def _fill(self, log, sim, rate, start, end):
        t = start
        root = 1000
        while t < end:
            sim.schedule_at(t, lambda: None)
            sim.run()
            log.record_sink_receipt(root, root, "sink", root_emitted_at=t - 0.5, replay_count=0)
            root += 1
            t += 1.0 / rate

    def test_rate_timeline_matches_known_rate(self):
        sim = Simulator()
        log = make_log(sim)
        self._fill(log, sim, rate=4.0, start=0.0, end=10.0)
        points = rate_timeline(log, kind="output", start=0.0, end=10.0, bin_s=1.0)
        assert len(points) == 10
        for point in points:
            assert point.rate == pytest.approx(4.0, abs=1.0)

    def test_rate_timeline_input_vs_output(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_source_emit(1, "src")
        points_in = rate_timeline(log, kind="input", start=0.0, end=1.0, bin_s=1.0)
        points_out = rate_timeline(log, kind="output", start=0.0, end=1.0, bin_s=1.0)
        assert points_in[0].rate == pytest.approx(1.0)
        assert points_out[0].rate == pytest.approx(0.0)

    def test_rate_timeline_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            rate_timeline(make_log(), kind="sideways")

    def test_latency_timeline_windows(self):
        sim = Simulator()
        log = make_log(sim)
        for t in (1.0, 2.0, 11.0, 12.0):
            sim.schedule_at(t, lambda: None)
            sim.run()
            log.record_sink_receipt(int(t), int(t), "sink", root_emitted_at=t - (0.2 if t < 10 else 0.6), replay_count=0)
        points = latency_timeline(log, start=0.0, end=20.0, window_s=10.0)
        assert len(points) == 2
        assert points[0].latency_s == pytest.approx(0.2)
        assert points[1].latency_s == pytest.approx(0.6)
        assert points[0].samples == 2


class TestStabilization:
    def _steady_log(self, rate_by_interval):
        """Build a log with piecewise-constant output rates: [(start, end, rate), ...]."""
        sim = Simulator()
        log = make_log(sim)
        root = 1
        for start, end, rate in rate_by_interval:
            if rate <= 0:
                continue
            t = start
            while t < end:
                sim.schedule_at(t, lambda: None)
                sim.run()
                log.record_sink_receipt(root, root, "sink", root_emitted_at=t, replay_count=0)
                root += 1
                t += 1.0 / rate
        sim.schedule_at(rate_by_interval[-1][1], lambda: None)
        sim.run()
        return log

    def test_detects_stabilization_after_disruption(self):
        # Zero output for 50 s, then a steady 8 ev/s.
        log = self._steady_log([(0.0, 50.0, 0.0), (50.0, 200.0, 8.0)])
        stab = stabilization_time(log, expected_rate=8.0, after=0.0, end=200.0)
        assert stab is not None
        assert 45.0 <= stab <= 60.0

    def test_returns_none_when_never_stable(self):
        log = self._steady_log([(0.0, 200.0, 20.0)])  # always 2.5x expected
        assert stabilization_time(log, expected_rate=8.0, after=0.0, end=200.0) is None

    def test_out_of_band_rate_delays_stabilization(self):
        # 13 ev/s (out of the 20 % band) for 100 s, then 8 ev/s.
        log = self._steady_log([(0.0, 100.0, 13.0), (100.0, 260.0, 8.0)])
        stab = stabilization_time(log, expected_rate=8.0, after=0.0, end=260.0)
        assert stab is not None
        assert stab >= 95.0

    def test_rejects_nonpositive_expected_rate(self):
        with pytest.raises(ValueError):
            stabilization_time(make_log(), expected_rate=0.0, after=0.0)


class TestMigrationMetrics:
    def _report(self, strategy="dcr", requested_at=100.0):
        report = MigrationReport(strategy=strategy, requested_at=requested_at)
        report.rebalance_started_at = requested_at + 2.0
        report.rebalance_command_completed_at = requested_at + 9.0
        report.init_completed_at = requested_at + 20.0
        report.completed_at = requested_at + 20.0
        return report

    def test_restore_measured_from_request_to_first_post_rebalance_output(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_source_emit(1, "src")
        advance(sim, 95.0)
        log.record_sink_receipt(1, 1, "sink", root_emitted_at=94.0, replay_count=0)  # pre-migration
        advance(sim, 125.0)
        log.record_sink_receipt(2, 2, "sink", root_emitted_at=124.0, replay_count=0)
        metrics = compute_migration_metrics(log, self._report(), expected_output_rate=8.0, end_time=400.0)
        assert metrics.restore_duration_s == pytest.approx(25.0)

    def test_receipts_before_rebalance_completion_do_not_count_as_restore(self):
        sim = Simulator()
        log = make_log(sim)
        advance(sim, 105.0)
        log.record_sink_receipt(1, 1, "sink", root_emitted_at=104.0, replay_count=0)  # during drain
        advance(sim, 130.0)
        log.record_sink_receipt(2, 2, "sink", root_emitted_at=129.0, replay_count=0)
        metrics = compute_migration_metrics(log, self._report(), expected_output_rate=8.0, end_time=400.0)
        assert metrics.restore_duration_s == pytest.approx(30.0)

    def test_catchup_only_counts_old_roots(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_source_emit(1, "src")  # old root, t=0
        advance(sim, 150.0)
        log.record_source_emit(2, "src")  # new root
        advance(sim, 160.0)
        log.record_sink_receipt(2, 20, "sink", root_emitted_at=150.0, replay_count=0)
        advance(sim, 170.0)
        log.record_sink_receipt(1, 10, "sink", root_emitted_at=0.0, replay_count=0)
        metrics = compute_migration_metrics(log, self._report(), expected_output_rate=8.0, end_time=400.0)
        assert metrics.catchup_time_s == pytest.approx(70.0)

    def test_recovery_uses_replayed_receipts(self):
        sim = Simulator()
        log = make_log(sim)
        log.record_source_emit(1, "src")
        advance(sim, 140.0)
        log.record_source_emit(1, "src", replay_count=1)
        advance(sim, 165.0)
        log.record_sink_receipt(1, 10, "sink", root_emitted_at=140.0, replay_count=1)
        metrics = compute_migration_metrics(
            log, self._report(strategy="dsm"), expected_output_rate=8.0, end_time=400.0
        )
        assert metrics.recovery_time_s == pytest.approx(65.0)
        assert metrics.replayed_message_count == 1

    def test_dsm_drain_duration_is_zero(self):
        log = make_log()
        metrics = compute_migration_metrics(log, self._report(strategy="dsm"), expected_output_rate=8.0)
        assert metrics.drain_capture_duration_s == 0.0

    def test_rebalance_duration_from_report(self):
        log = make_log()
        metrics = compute_migration_metrics(log, self._report(), expected_output_rate=8.0)
        assert metrics.rebalance_duration_s == pytest.approx(7.0)

    def test_lost_in_kills_counts_only_post_request_kills(self):
        sim = Simulator()
        log = make_log(sim)
        advance(sim, 50.0)
        log.record_kill("a#0", queued_events_lost=5)
        advance(sim, 103.0)
        log.record_kill("b#0", queued_events_lost=2, pending_events_lost=4)
        metrics = compute_migration_metrics(log, self._report(), expected_output_rate=8.0)
        assert metrics.messages_lost_in_kills == 2

    def test_as_dict_contains_all_columns(self):
        log = make_log()
        metrics = compute_migration_metrics(log, self._report(), expected_output_rate=8.0,
                                             dataflow_name="tiny", scenario="scale-in")
        row = metrics.as_dict()
        for column in ("strategy", "dataflow", "scenario", "restore_s", "drain_capture_s",
                       "rebalance_s", "catchup_s", "recovery_s", "stabilization_s",
                       "replayed_messages", "lost_in_kills"):
            assert column in row
