"""Unit tests for the topology runtime: deployment, placement and rebalance."""

from __future__ import annotations

import pytest

from repro.cluster.placement import placement_diff
from repro.engine.executor import ExecutorStatus
from repro.engine.runtime import RuntimeError_

from tests.conftest import build_cluster, fast_config, make_runtime, tiny_dataflow
from repro.engine.runtime import TopologyRuntime
from repro.experiments.scenarios import plan_after_scaling
from repro.cluster.cloud import CloudProvider
from repro.cluster.vm import D3
from repro.sim import Simulator


class TestDeployment:
    def test_deploy_creates_one_executor_per_instance(self, deployed_runtime):
        dataflow = deployed_runtime.dataflow
        expected = dataflow.total_instances(include_sources_and_sinks=True)
        assert len(deployed_runtime.executors) == expected

    def test_sources_and_sinks_pinned_to_util_vm(self, deployed_runtime):
        util = deployed_runtime.util_vm_id
        assert util is not None
        assert deployed_runtime.executor_vm("source#0") == util
        assert deployed_runtime.executor_vm("sink#0") == util

    def test_user_tasks_not_placed_on_util_vm(self, deployed_runtime):
        util = deployed_runtime.util_vm_id
        for executor in deployed_runtime.user_executors:
            assert executor.vm_id != util

    def test_slots_marked_occupied(self, deployed_runtime):
        placement = deployed_runtime.placement
        for executor_id, slot_id in placement.assignments.items():
            assert deployed_runtime.cluster.find_slot(slot_id).executor_id == executor_id

    def test_double_deploy_rejected(self, deployed_runtime):
        with pytest.raises(RuntimeError_):
            deployed_runtime.deploy()

    def test_start_before_deploy_rejected(self):
        sim = Simulator()
        runtime = TopologyRuntime(tiny_dataflow(), build_cluster(sim), sim=sim, config=fast_config())
        with pytest.raises(RuntimeError_):
            runtime.start()

    def test_periodic_checkpoints_enabled_only_for_dsm_config(self):
        dsm_runtime = make_runtime(strategy="dsm")
        dcr_runtime = make_runtime(strategy="dcr")
        assert dsm_runtime.checkpoints.periodic_enabled
        assert not dcr_runtime.checkpoints.periodic_enabled

    def test_user_executor_ids_cover_all_user_tasks(self, deployed_runtime):
        ids = deployed_runtime.user_executor_id_set()
        assert ids == {"a#0", "b#0", "b#1", "c#0"}


class TestRebalance:
    def _target_plan(self, runtime):
        provider = CloudProvider(runtime.sim)
        new_vms = provider.provision(D3, 2, name_prefix="new")
        for vm in new_vms:
            runtime.cluster.add_vm(vm)
        return plan_after_scaling(runtime, [vm.vm_id for vm in new_vms]), new_vms

    def test_rebalance_before_deploy_rejected(self):
        sim = Simulator()
        runtime = TopologyRuntime(tiny_dataflow(), build_cluster(sim), sim=sim, config=fast_config())
        with pytest.raises(RuntimeError_):
            runtime.rebalance(None)

    def test_rebalance_kills_migrating_executors_immediately(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=2.0)
        new_plan, _ = self._target_plan(runtime)
        runtime.rebalance(new_plan)
        for executor in runtime.user_executors:
            assert executor.status is ExecutorStatus.KILLED

    def test_sources_and_sinks_never_migrate(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=2.0)
        old_plan = runtime.placement
        new_plan, _ = self._target_plan(runtime)
        migrating, staying, _ = placement_diff(old_plan, new_plan)
        assert "source#0" in staying
        assert "sink#0" in staying
        runtime.rebalance(new_plan)
        assert runtime.executor("source#0").status is ExecutorStatus.RUNNING
        assert runtime.executor("sink#0").status is ExecutorStatus.RUNNING

    def test_rebalance_moves_executors_to_target_vms(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=2.0)
        new_plan, new_vms = self._target_plan(runtime)
        target_ids = {vm.vm_id for vm in new_vms}
        runtime.rebalance(new_plan)
        runtime.sim.run(until=10.0)
        for executor in runtime.user_executors:
            assert executor.vm_id in target_ids
            assert executor.status is ExecutorStatus.RUNNING

    def test_old_slots_released_after_rebalance(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=2.0)
        old_plan = runtime.placement
        old_user_slots = {
            slot for executor_id, slot in old_plan.assignments.items()
            if executor_id in runtime.user_executor_id_set()
        }
        new_plan, _ = self._target_plan(runtime)
        runtime.rebalance(new_plan)
        for slot_id in old_user_slots:
            assert not runtime.cluster.find_slot(slot_id).occupied

    def test_command_completion_callback_fires_after_command_duration(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=2.0)
        new_plan, _ = self._target_plan(runtime)
        completions = []
        record = runtime.rebalance(new_plan, on_command_complete=lambda r: completions.append(runtime.sim.now))
        runtime.sim.run(until=10.0)
        assert len(completions) == 1
        assert completions[0] == pytest.approx(2.0 + record.command_duration_s)

    def test_ready_times_recorded_for_every_migrated_executor(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=2.0)
        new_plan, _ = self._target_plan(runtime)
        record = runtime.rebalance(new_plan)
        runtime.sim.run(until=10.0)
        assert set(record.executor_ready_at) == record.migrating
        assert record.all_ready_at <= 10.0

    def test_loaded_flag_set_only_when_sources_running_with_acking(self):
        dsm_runtime = make_runtime(strategy="dsm")
        dsm_runtime.start()
        dsm_runtime.sim.run(until=2.0)
        plan, _ = self._target_plan(dsm_runtime)
        record = dsm_runtime.rebalance(plan)
        assert record.loaded

        dcr_runtime = make_runtime(strategy="dcr")
        dcr_runtime.start()
        dcr_runtime.sim.run(until=2.0)
        dcr_runtime.pause_sources()
        plan2, _ = self._target_plan(dcr_runtime)
        record2 = dcr_runtime.rebalance(plan2)
        assert not record2.loaded

    def test_events_sent_to_restarting_executors_are_held_by_transport(self):
        runtime = make_runtime(strategy="dsm")
        runtime.start()
        runtime.sim.run(until=2.0)
        new_plan, _ = self._target_plan(runtime)
        runtime.rebalance(new_plan)
        # The DSM source keeps emitting into the broken dataflow: the transport
        # defers those events until the restarted executors are ready, after
        # which nothing remains deferred.
        runtime.sim.run(until=2.3)
        assert runtime.log.deferred_count() > 0
        runtime.sim.run(until=10.0)
        assert not runtime._deferred_deliveries
