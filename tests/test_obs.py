"""Unified telemetry layer: registry, tracer, exporters, determinism, inertness.

Covers the observability acceptance criteria end to end:

* registry unit behaviour (get-or-create keying, kind-mismatch and
  negative-increment guards, deterministic snapshot order);
* tracer unit behaviour (sequential ids, double-end / end-before-start
  guards, explicit parenting, canonical content excludes wall clocks);
* the tentpole integration contract on a Grid 2x surge run: every controller
  tick span carries exactly the five stage children (sense -> forecast ->
  plan -> place -> act) with forecast/plan payloads, and a migration span
  nests its checkpoint-wave span;
* determinism: same-seed runs produce byte-identical simulated-time
  (canonical) trace content;
* inertness: with telemetry off no Telemetry object exists and the event-log
  digest matches a telemetry-on run bit for bit;
* exporters: schema-validated JSONL round-trip, validator rejections, Chrome
  trace structure, text summary;
* the shared ``run_metadata`` helper used by every ``results/`` JSON writer.
"""

import json

import pytest

from repro.experiments.elastic import run_elastic_experiment
from repro.metrics.metadata import config_digest, run_metadata
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    Telemetry,
    TRACE_SCHEMA,
    canonical_trace_text,
    chrome_trace,
    summarize,
    trace_lines,
    validate_trace_jsonl,
    write_trace_jsonl,
)
from repro.sim.shard import log_digest

STAGES = ["sense", "forecast", "plan", "place", "act"]


# ------------------------------------------------------------------ registry
class TestMetricsRegistry:
    def test_get_or_create_is_keyed_by_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("router", "deliveries", shard="0")
        b = registry.counter("router", "deliveries", shard="1")
        assert a is not b
        assert registry.counter("router", "deliveries", shard="0") is a
        assert len(registry) == 2

    def test_kind_mismatch_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("kernel", "events")
        with pytest.raises(TypeError, match="already registered as counter"):
            registry.gauge("kernel", "events")

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("kernel", "events")
        with pytest.raises(ValueError, match="negative"):
            counter.inc(-1)

    def test_gauge_tracks_high_water(self):
        gauge = MetricsRegistry().gauge("executor", "queue_depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 5

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("checkpoint", "wave_duration_s")
        assert histogram.mean is None
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_snapshot_order_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("router", "deliveries", shard="1")
        registry.counter("kernel", "events")
        registry.gauge("router", "backlog")
        keys = [(s["subsystem"], s["name"]) for s in registry.snapshot()]
        assert keys == sorted(keys)


# -------------------------------------------------------------------- tracer
class TestSpanTracer:
    def test_sequential_ids_and_parenting(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        tick = tracer.begin("controller.tick", "control", 15.0)
        stage = tracer.begin("sense", "control.stage", 15.0, parent=tick)
        assert (tick.span_id, stage.span_id) == (0, 1)
        assert stage.parent_id == tick.span_id
        tracer.end(stage, 15.0)
        tracer.end(tick, 15.0, outcome="in-band")
        assert tick.args["outcome"] == "in-band"
        assert tracer.children_of(tick) == [stage]
        assert tracer.open_spans() == []

    def test_double_end_and_time_travel_rejected(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        span = tracer.begin("x", "control", 10.0)
        with pytest.raises(ValueError, match="before its start"):
            tracer.end(span, 5.0)
        tracer.end(span, 10.0)
        with pytest.raises(ValueError, match="already ended"):
            tracer.end(span, 11.0)

    def test_canonical_excludes_wall_clock(self):
        tracer = SpanTracer(clock=lambda: 1234.5)
        span = tracer.emit("fault.evict", "chaos", 100.0, 160.0, vm_id="d2-001")
        canonical = span.canonical()
        assert "wall_start_s" not in canonical
        assert "wall_end_s" not in canonical
        full = span.as_dict()
        assert full["wall_start_s"] == 1234.5
        assert full["args"] == {"vm_id": "d2-001"}


# --------------------------------------------------- tentpole: grid 2x surge
def _traced_run():
    return run_elastic_experiment(
        dag="grid",
        strategy="ccr",
        profile="surge",
        duration_s=600.0,
        seed=2018,
        telemetry=True,
    )


@pytest.fixture(scope="module")
def traced():
    return _traced_run()


class TestControlPlaneTrace:
    def test_every_tick_has_the_five_stage_children(self, traced):
        tracer = traced.telemetry.tracer
        ticks = tracer.by_category("control")
        assert ticks, "the controller never ticked"
        for tick in ticks:
            children = tracer.children_of(tick)
            stage_children = [c for c in children if c.category == "control.stage"]
            assert [c.name for c in stage_children] == STAGES
            assert tick.args.get("outcome") is not None

    def test_stage_spans_carry_forecast_and_plan_payloads(self, traced):
        tracer = traced.telemetry.tracer
        stages = tracer.by_category("control.stage")
        forecasts = [s for s in stages if s.name == "forecast" and "skipped" not in s.args]
        plans = [s for s in stages if s.name == "plan" and "skipped" not in s.args]
        assert forecasts and plans
        for span in forecasts:
            assert "forecast_rate_ev_s" in span.args
            assert "observed_rate_ev_s" in span.args
        for span in plans:
            assert "target_tier" in span.args

    def test_surge_produces_a_migration_span_nesting_checkpoint_waves(self, traced):
        tracer = traced.telemetry.tracer
        migrations = tracer.by_category("migration")
        assert migrations, "the 2x surge must trigger at least one migration"
        out = [m for m in migrations if m.name == "migration.out"]
        assert out
        children = tracer.children_of(out[0])
        names = {c.name for c in children}
        assert any(n.startswith("checkpoint.wave.") for n in names), names
        assert "checkpoint.prepare" in names
        assert "rebalance" in names

    def test_registry_scraped_the_engine(self, traced):
        snapshot = {
            (s["subsystem"], s["name"]): s
            for s in traced.telemetry.registry.snapshot()
            if not s["labels"]
        }
        assert snapshot[("kernel", "events_stepped")]["value"] > 0
        assert snapshot[("router", "deliveries")]["value"] > 0
        assert snapshot[("router", "route_cache_hits")]["value"] > 0

    def test_acker_bulk_counters_scraped_without_double_count(self, traced):
        telemetry = traced.telemetry
        telemetry.scrape(traced.runtime)
        snapshot = {
            (s["subsystem"], s["name"]): s["value"]
            for s in telemetry.registry.snapshot()
            if not s["labels"]
        }
        for name in ("bulk_anchors", "bulk_acks", "replays"):
            assert ("acker", name) in snapshot
        before = {k: v for k, v in snapshot.items() if k[0] == "acker"}
        telemetry.scrape(traced.runtime)
        after = {
            (s["subsystem"], s["name"]): s["value"]
            for s in telemetry.registry.snapshot()
            if not s["labels"] and s["subsystem"] == "acker"
        }
        assert after == before

    def test_same_seed_canonical_trace_is_byte_identical(self, traced):
        again = _traced_run()
        assert canonical_trace_text(traced.telemetry) == canonical_trace_text(
            again.telemetry
        )

    def test_telemetry_off_is_inert_and_log_digest_matches(self, traced):
        off = run_elastic_experiment(
            dag="grid",
            strategy="ccr",
            profile="surge",
            duration_s=600.0,
            seed=2018,
            telemetry=False,
        )
        assert off.telemetry is None
        assert off.runtime.telemetry is None
        assert log_digest(off.log) == log_digest(traced.log)


# ----------------------------------------------------------------- exporters
class TestExporters:
    def test_jsonl_roundtrip_validates(self, traced, tmp_path):
        path = write_trace_jsonl(traced.telemetry, tmp_path / "trace.jsonl")
        records = validate_trace_jsonl(path)
        header = records[0]
        assert header["schema"] == TRACE_SCHEMA
        assert header["scenario"] == "elastic"
        kinds = {r["type"] for r in records}
        assert kinds == {"header", "span", "metric"}

    def test_validator_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="header"):
            validate_trace_jsonl(path)

    def test_validator_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header", "schema": "repro-trace/99"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            validate_trace_jsonl(path)

    def test_validator_rejects_dangling_parent(self, tmp_path):
        telemetry = Telemetry(clock=lambda: 0.0)
        telemetry.tracer.emit("x", "control", 0.0, 1.0)
        lines = trace_lines(telemetry)
        record = json.loads(lines[-1])
        record["parent_id"] = 999
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines[:-1] + [json.dumps(record)]) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="parent"):
            validate_trace_jsonl(path)

    def test_chrome_trace_structure(self, traced):
        payload = chrome_trace(traced.telemetry)
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert complete and metadata
        first_tick = traced.telemetry.tracer.by_category("control")[0]
        event = next(
            e for e in complete if e["args"]["span_id"] == first_tick.span_id
        )
        # Simulated seconds ride the microsecond fields Perfetto expects.
        assert event["name"] == "controller.tick"
        assert event["ts"] == pytest.approx(first_tick.start_s * 1e6)
        assert event["dur"] == pytest.approx(
            (first_tick.end_s - first_tick.start_s) * 1e6
        )
        assert {e["name"] for e in metadata} == {"thread_name"}
        assert payload["otherData"]["schema"] == TRACE_SCHEMA

    def test_summary_mentions_categories_and_metrics(self, traced):
        text = summarize(traced.telemetry)
        assert "control" in text
        assert "migration" in text
        assert "kernel.events_stepped" in text


# ------------------------------------------------------------- run metadata
class TestRunMetadata:
    def test_preamble_keys(self):
        payload = run_metadata("repro-bench-engine/1", seed=7, benchmarks={})
        assert payload["schema"] == "repro-bench-engine/1"
        assert payload["seed"] == 7
        assert "python" in payload and "machine" in payload
        assert "timestamp" not in payload  # caller-injected only
        assert payload["benchmarks"] == {}

    def test_config_digest_is_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})
