"""Unit tests for events and checkpoint control events."""

from __future__ import annotations

import pytest

from repro.dataflow.event import CheckpointAction, Event, EventKind, next_event_id, reset_event_ids


class TestDataEvents:
    def test_root_event_is_its_own_root(self):
        event = Event.data("source", payload={"seq": 1}, created_at=2.0)
        assert event.is_data
        assert event.is_root
        assert event.root_id == event.event_id
        assert event.root_emitted_at == 2.0

    def test_event_ids_are_unique(self):
        events = [Event.data("source") for _ in range(100)]
        assert len({e.event_id for e in events}) == 100

    def test_derive_keeps_root_and_changes_id(self):
        root = Event.data("source", payload="p", created_at=1.0)
        child = root.derive("task-a", payload="q", created_at=1.5)
        assert child.root_id == root.root_id
        assert child.event_id != root.event_id
        assert not child.is_root
        assert child.source_task == "task-a"
        assert child.root_emitted_at == 1.0

    def test_derive_preserves_replay_count_and_anchoring(self):
        root = Event.data("source", replay_count=2, anchored=True)
        child = root.derive("task-a", created_at=3.0)
        assert child.replay_count == 2
        assert child.anchored
        assert child.is_replay

    def test_copy_for_edge_gets_fresh_id_same_root(self):
        event = Event.data("source")
        copy = event.copy_for_edge()
        assert copy.event_id != event.event_id
        assert copy.root_id == event.root_id
        assert copy.payload == event.payload

    def test_explicit_root_id_for_replay(self):
        original = Event.data("source", created_at=1.0)
        replay = Event.data(
            "source", root_id=original.root_id, root_emitted_at=31.0, replay_count=1
        )
        assert replay.root_id == original.root_id
        assert replay.event_id != original.event_id
        assert replay.is_replay
        assert not replay.is_root


class TestCheckpointEvents:
    def test_checkpoint_event_fields(self):
        event = Event.checkpoint(CheckpointAction.PREPARE, 7, "checkpoint-source", created_at=5.0)
        assert event.is_checkpoint
        assert not event.is_data
        assert event.checkpoint_action is CheckpointAction.PREPARE
        assert event.checkpoint_id == 7
        assert event.anchored

    def test_all_actions_supported(self):
        for action in CheckpointAction:
            event = Event.checkpoint(action, 1, "cs")
            assert event.checkpoint_action is action

    def test_copy_preserves_checkpoint_metadata(self):
        event = Event.checkpoint(CheckpointAction.INIT, 3, "cs")
        event.payload = {"forward": False}
        copy = event.copy_for_edge()
        assert copy.checkpoint_action is CheckpointAction.INIT
        assert copy.checkpoint_id == 3
        assert copy.payload == {"forward": False}


class TestIdCounter:
    def test_next_event_id_monotonic(self):
        first = next_event_id()
        second = next_event_id()
        assert second == first + 1

    def test_reset_event_ids(self):
        reset_event_ids()
        assert next_event_id() == 1
