"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim import PeriodicTimer, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert Simulator(start_time=12.5).now == 12.5

    def test_infinite_start_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(start_time=float("inf"))

    def test_events_execute_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "last")
        sim.run()
        assert fired == ["early", "late", "last"]

    def test_ties_execute_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(4.25, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(4.25)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_non_callable_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, "not-callable")

    def test_kwargs_passed_to_callback(self):
        sim = Simulator()
        seen = {}
        sim.schedule(1.0, lambda **kw: seen.update(kw), a=1, b="x")
        sim.run()
        assert seen == {"a": 1, "b": "x"}

    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(1.0, chain, 1)
        sim.run()
        assert fired == [1, 2, 3, 4, 5]
        assert sim.now == pytest.approx(5.0)


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == pytest.approx(5.0)
        assert sim.pending_events == 1

    def test_run_until_then_continue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_advance_runs_relative_duration(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 3)
        sim.advance(2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().advance(-1.0)

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, lambda: sim.stop())
        sim.schedule(3.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestTimerCancellation:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, fired.append, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()
        assert not timer.fired

    def test_active_reflects_lifecycle(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        sim.run()
        assert not timer.active


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        sim.every(1.0, lambda: fired.append(sim.now))
        sim.run(until=5.5)
        assert fired == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0])

    def test_custom_start_delay(self):
        sim = Simulator()
        fired = []
        sim.every(2.0, lambda: fired.append(sim.now), start_delay=0.5)
        sim.run(until=5.0)
        assert fired == pytest.approx([0.5, 2.5, 4.5])

    def test_cancel_stops_firing(self):
        sim = Simulator()
        fired = []
        timer = sim.every(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.5, timer.cancel)
        sim.run(until=10.0)
        assert fired == pytest.approx([1.0, 2.0])
        assert not timer.active

    def test_fire_count_tracked(self):
        sim = Simulator()
        timer = sim.every(1.0, lambda: None)
        sim.run(until=3.5)
        assert timer.fire_count == 3

    def test_zero_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_callback_cancelling_itself(self):
        sim = Simulator()
        fired = []
        holder = {}

        def once():
            fired.append(sim.now)
            holder["timer"].cancel()

        holder["timer"] = sim.every(1.0, once)
        sim.run(until=10.0)
        assert fired == pytest.approx([1.0])


class TestFastPathScheduling:
    def test_schedule_fast_runs_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_fast(2.0, fired.append, ("late",))
        sim.schedule_fast(1.0, fired.append, ("early",))
        sim.run()
        assert fired == ["early", "late"]

    def test_schedule_at_fast_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at_fast(3.5, fired.append, ("x",))
        sim.run()
        assert fired == ["x"]
        assert sim.now == pytest.approx(3.5)

    def test_fast_and_timer_entries_interleave_by_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "timer-first")
        sim.schedule_fast(1.0, fired.append, ("fast-second",))
        sim.schedule(1.0, fired.append, "timer-third")
        sim.run()
        assert fired == ["timer-first", "fast-second", "timer-third"]

    def test_fast_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_fast(-0.1, lambda: None)

    def test_fast_schedule_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at_fast(1.0, lambda: None)

    def test_fast_events_count_as_processed_and_pending(self):
        sim = Simulator()
        sim.schedule_fast(1.0, lambda: None)
        sim.schedule_fast(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.processed_events == 2
        assert sim.pending_events == 0

    def test_step_executes_fast_entries(self):
        sim = Simulator()
        fired = []
        sim.schedule_fast(1.0, fired.append, ("a",))
        assert sim.step() is True
        assert fired == ["a"]


class TestPendingEventAccounting:
    def test_pending_events_excludes_cancelled_timers(self):
        """Bugfix: cancelled timers still in the heap are not 'pending'."""
        sim = Simulator()
        timers = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        timers[0].cancel()
        timers[3].cancel()
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0
        assert sim.processed_events == 3

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        sim.run()
        timer.cancel()  # inert: already fired
        assert sim.pending_events == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        other = sim.schedule(2.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert sim.pending_events == 1
        sim.run()
        assert other.fired

    def test_periodic_timer_cancellation_does_not_leak_heap_entries(self):
        """Bugfix: long runs that re-arm and cancel periodic timers compact."""
        sim = Simulator()

        def churn():
            # Re-create a periodic timer every tick, cancelling the old one:
            # this is the elastic controller's re-arm pattern that used to
            # leave one dead heap entry per cancellation.
            if holder["drain"] is not None:
                holder["drain"].cancel()
            holder["drain"] = sim.every(50.0, lambda: None)

        holder = {"drain": None}
        driver = sim.every(0.01, churn)
        sim.run(until=20.0)
        driver.cancel()
        # ~2000 cancelled drain timers were created; compaction must keep the
        # heap near the live count instead of accumulating them all.
        assert sim.pending_events <= 2
        assert len(sim._queue) < 200

    def test_compaction_preserves_order_and_results(self):
        sim = Simulator()
        fired = []
        timers = [sim.schedule(1000.0 + i, fired.append, i) for i in range(300)]
        # Cancel all but every 29th; crossing the threshold triggers compaction.
        survivors = []
        for i, timer in enumerate(timers):
            if i % 29 == 0:
                survivors.append(i)
            else:
                timer.cancel()
        assert sim.pending_events == len(survivors)
        assert len(sim._queue) < 300  # compaction actually shrank the heap
        sim.run()
        assert fired == survivors
