"""Tests for the DCR task-logic update extension (the paper's future-work item).

DCR establishes a clean boundary between pre- and post-migration events, which
makes it safe to swap a task's user logic as part of the migration: old events
are processed entirely by the old logic, new events entirely by the new logic.
"""

from __future__ import annotations

import pytest

from repro.cluster.cloud import CloudProvider
from repro.cluster.vm import D3
from repro.core import DrainCheckpointRestore, strategy_by_name
from repro.experiments.scenarios import plan_after_scaling

from tests.conftest import make_runtime


def tagging_logic(tag):
    """User logic that tags every payload it emits with the given label."""

    def _logic(payload, state):
        state["processed"] = state.get("processed", 0) + 1
        tagged = dict(payload) if isinstance(payload, dict) else {"value": payload}
        tagged["logic"] = tag
        return [tagged]

    return _logic


def run_dcr_with_update(logic_updates, migrate_at=3.0, run_until=30.0):
    runtime = make_runtime(strategy="dcr", seed=13)
    # Install the "old" logic on task b before starting.
    runtime.dataflow.task("b").logic = tagging_logic("v1")
    runtime.start()
    runtime.sim.run(until=migrate_at)

    provider = CloudProvider(runtime.sim)
    new_vms = provider.provision(D3, 2, name_prefix="target")
    for vm in new_vms:
        runtime.cluster.add_vm(vm)
    new_plan = plan_after_scaling(runtime, [vm.vm_id for vm in new_vms])

    strategy = DrainCheckpointRestore(runtime, init_resend_interval_s=0.2)
    report = strategy.migrate(new_plan, logic_updates=logic_updates)
    runtime.sim.run(until=run_until)
    return runtime, report


class TestLogicUpdate:
    def test_new_logic_applies_only_after_migration(self):
        runtime, report = run_dcr_with_update({"b": tagging_logic("v2")})
        assert report.is_complete
        # Payload contents are not logged, so verify the swap via the task
        # object and the report's note about when it was applied.
        assert runtime.dataflow.task("b").logic("probe", {})[0]["logic"] == "v2"
        assert any(key.startswith("logic_updated:b") for key in report.notes)
        # The logic swap happened after the restore completed and before (or at)
        # the moment the sources were unpaused.
        assert report.notes["logic_updated:b"] >= report.init_completed_at
        assert report.notes["logic_updated:b"] <= report.sources_unpaused_at

    def test_events_keep_flowing_after_logic_update(self):
        runtime, report = run_dcr_with_update({"b": tagging_logic("v2")})
        post_receipts = [r for r in runtime.log.sink_receipts if r.time > report.sources_unpaused_at]
        assert post_receipts

    def test_no_message_loss_with_logic_update(self):
        runtime, report = run_dcr_with_update({"b": tagging_logic("v2")})
        runtime.stop_sources()
        runtime.sim.run(until=60.0)
        emitted = {e.root_id for e in runtime.log.source_emits}
        received = {r.root_id for r in runtime.log.sink_receipts}
        assert emitted == received

    def test_unknown_task_rejected(self):
        runtime = make_runtime(strategy="dcr", seed=13)
        runtime.start()
        runtime.sim.run(until=1.0)
        provider = CloudProvider(runtime.sim)
        new_vms = provider.provision(D3, 2, name_prefix="target")
        for vm in new_vms:
            runtime.cluster.add_vm(vm)
        plan = plan_after_scaling(runtime, [vm.vm_id for vm in new_vms])
        strategy = DrainCheckpointRestore(runtime)
        with pytest.raises(KeyError):
            strategy.migrate(plan, logic_updates={"ghost": tagging_logic("v2")})

    def test_ccr_inherits_logic_update_support(self):
        """CCR can also swap logic, though captured old events then see the new logic."""
        runtime = make_runtime(strategy="ccr", seed=13)
        runtime.start()
        runtime.sim.run(until=3.0)
        provider = CloudProvider(runtime.sim)
        new_vms = provider.provision(D3, 2, name_prefix="target")
        for vm in new_vms:
            runtime.cluster.add_vm(vm)
        plan = plan_after_scaling(runtime, [vm.vm_id for vm in new_vms])
        strategy_cls = strategy_by_name("ccr")
        strategy = strategy_cls(runtime, init_resend_interval_s=0.2)
        report = strategy.migrate(plan, logic_updates={"c": tagging_logic("v2")})
        runtime.sim.run(until=30.0)
        assert report.is_complete
        assert runtime.dataflow.task("c").logic("probe", {})[0]["logic"] == "v2"
