"""Unit tests for the round-robin and resource-aware schedulers."""

from __future__ import annotations

import pytest

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.scheduler import ResourceAwareScheduler, RoundRobinScheduler, SchedulingError
from repro.cluster.vm import D2, D3
from repro.sim import Simulator


def build_cluster(sim, d2=3, d3=0, util=False):
    provider = CloudProvider(sim)
    cluster = Cluster()
    if util:
        util_vm = provider.provision(D3, 1, name_prefix="util")[0]
        util_vm.tags["role"] = "util"
        cluster.add_vm(util_vm)
    for vm in provider.provision(D2, d2, name_prefix="d2") if d2 else []:
        cluster.add_vm(vm)
    for vm in provider.provision(D3, d3, name_prefix="d3") if d3 else []:
        cluster.add_vm(vm)
    return cluster


class TestRoundRobinScheduler:
    def test_spreads_executors_across_vms(self, sim):
        cluster = build_cluster(sim, d2=3)
        plan = RoundRobinScheduler().schedule(["a#0", "b#0", "c#0"], cluster)
        assert len(plan.vms_used) == 3

    def test_all_executors_placed_on_distinct_slots(self, sim):
        cluster = build_cluster(sim, d2=3)
        executors = [f"t{i}#0" for i in range(6)]
        plan = RoundRobinScheduler().schedule(executors, cluster)
        assert len(plan) == 6
        assert len(set(plan.assignments.values())) == 6

    def test_wraps_around_when_vms_fill_up(self, sim):
        cluster = build_cluster(sim, d2=2)
        executors = [f"t{i}#0" for i in range(4)]
        plan = RoundRobinScheduler().schedule(executors, cluster)
        for vm in cluster.vms:
            assert len(plan.executors_on_vm(vm.vm_id)) == 2

    def test_insufficient_slots_raises(self, sim):
        cluster = build_cluster(sim, d2=1)
        with pytest.raises(SchedulingError):
            RoundRobinScheduler().schedule([f"t{i}#0" for i in range(3)], cluster)

    def test_pinned_executors_go_to_pinned_vm(self, sim):
        cluster = build_cluster(sim, d2=2, util=True)
        util_id = next(vm.vm_id for vm in cluster.vms if vm.tags.get("role") == "util")
        plan = RoundRobinScheduler().schedule(
            ["src#0", "sink#0", "a#0", "b#0"],
            cluster,
            pinned={"src#0": util_id, "sink#0": util_id},
            exclude_vms=[util_id],
        )
        assert plan.vm_of("src#0") == util_id
        assert plan.vm_of("sink#0") == util_id
        assert plan.vm_of("a#0") != util_id
        assert plan.vm_of("b#0") != util_id

    def test_excluded_vm_not_used_for_unpinned(self, sim):
        cluster = build_cluster(sim, d2=3)
        excluded = cluster.vms[0].vm_id
        plan = RoundRobinScheduler().schedule(
            ["a#0", "b#0", "c#0", "d#0"], cluster, exclude_vms=[excluded]
        )
        assert excluded not in plan.vms_used

    def test_pinned_vm_missing_from_cluster_raises(self, sim):
        cluster = build_cluster(sim, d2=1)
        with pytest.raises(SchedulingError):
            RoundRobinScheduler().schedule(["a#0"], cluster, pinned={"a#0": "ghost"})

    def test_pinned_vm_with_no_free_slot_raises(self, sim):
        cluster = build_cluster(sim, d2=1)
        vm_id = cluster.vms[0].vm_id
        with pytest.raises(SchedulingError):
            RoundRobinScheduler().schedule(
                ["a#0", "b#0", "c#0"],
                cluster,
                pinned={"a#0": vm_id, "b#0": vm_id, "c#0": vm_id},
            )

    def test_no_eligible_vms_raises(self, sim):
        cluster = build_cluster(sim, d2=1)
        with pytest.raises(SchedulingError):
            RoundRobinScheduler().schedule(["a#0"], cluster, exclude_vms=[cluster.vms[0].vm_id])

    def test_deterministic_for_same_input(self, sim):
        cluster_a = build_cluster(Simulator(), d2=3)
        cluster_b = build_cluster(Simulator(), d2=3)
        executors = [f"t{i}#0" for i in range(5)]
        plan_a = RoundRobinScheduler().schedule(executors, cluster_a)
        plan_b = RoundRobinScheduler().schedule(executors, cluster_b)
        assert plan_a.assignments == plan_b.assignments


class TestResourceAwareScheduler:
    def test_packs_vms_before_moving_on(self, sim):
        cluster = build_cluster(sim, d2=3)
        plan = ResourceAwareScheduler().schedule(["a#0", "b#0", "c#0"], cluster)
        # Two executors fill the first D2 VM; only the third spills over.
        assert len(plan.vms_used) == 2

    def test_uses_fewer_vms_than_round_robin(self, sim):
        cluster_packed = build_cluster(Simulator(), d2=4)
        cluster_spread = build_cluster(Simulator(), d2=4)
        executors = [f"t{i}#0" for i in range(4)]
        packed = ResourceAwareScheduler().schedule(executors, cluster_packed)
        spread = RoundRobinScheduler().schedule(executors, cluster_spread)
        assert len(packed.vms_used) < len(spread.vms_used)

    def test_respects_pinning_and_exclusion(self, sim):
        cluster = build_cluster(sim, d2=2, util=True)
        util_id = next(vm.vm_id for vm in cluster.vms if vm.tags.get("role") == "util")
        plan = ResourceAwareScheduler().schedule(
            ["src#0", "a#0", "b#0"],
            cluster,
            pinned={"src#0": util_id},
            exclude_vms=[util_id],
        )
        assert plan.vm_of("src#0") == util_id
        assert util_id not in {plan.vm_of("a#0"), plan.vm_of("b#0")}

    def test_insufficient_slots_raises(self, sim):
        cluster = build_cluster(sim, d2=1)
        with pytest.raises(SchedulingError):
            ResourceAwareScheduler().schedule([f"t{i}#0" for i in range(3)], cluster)
