"""Unit tests for VM types, slots and virtual machines."""

from __future__ import annotations

import pytest

from repro.cluster.vm import D1, D2, D3, Slot, VirtualMachine, VMType, VM_TYPES


class TestVMType:
    def test_paper_flavours_registered(self):
        assert set(VM_TYPES) == {"D1", "D2", "D3"}

    def test_paper_flavours_slot_counts(self):
        assert D1.slots == 1
        assert D2.slots == 2
        assert D3.slots == 4

    def test_slots_equal_cores_for_paper_flavours(self):
        for vm_type in (D1, D2, D3):
            assert vm_type.slots == vm_type.cores

    def test_memory_scales_with_cores(self):
        assert D2.memory_gb == pytest.approx(2 * D1.memory_gb)
        assert D3.memory_gb == pytest.approx(4 * D1.memory_gb)

    def test_cost_scales_with_cores(self):
        assert D3.hourly_cost > D2.hourly_cost > D1.hourly_cost

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ValueError):
            VMType(name="bad", cores=0, memory_gb=1.0, slots=1, hourly_cost=0.1)

    def test_more_slots_than_cores_rejected(self):
        with pytest.raises(ValueError):
            VMType(name="bad", cores=2, memory_gb=1.0, slots=3, hourly_cost=0.1)


class TestSlot:
    def test_assign_and_release(self):
        slot = Slot(slot_id="vm:slot0", vm_id="vm", index=0)
        assert not slot.occupied
        slot.assign("task#0")
        assert slot.occupied
        assert slot.executor_id == "task#0"
        released = slot.release()
        assert released == "task#0"
        assert not slot.occupied

    def test_double_assign_same_executor_is_ok(self):
        slot = Slot(slot_id="vm:slot0", vm_id="vm", index=0)
        slot.assign("task#0")
        slot.assign("task#0")
        assert slot.executor_id == "task#0"

    def test_double_assign_different_executor_rejected(self):
        slot = Slot(slot_id="vm:slot0", vm_id="vm", index=0)
        slot.assign("task#0")
        with pytest.raises(ValueError):
            slot.assign("task#1")

    def test_release_empty_slot_returns_none(self):
        slot = Slot(slot_id="vm:slot0", vm_id="vm", index=0)
        assert slot.release() is None


class TestVirtualMachine:
    def test_slots_created_per_type(self):
        vm = VirtualMachine("vm-1", D3)
        assert len(vm.slots) == 4
        assert [s.index for s in vm.slots] == [0, 1, 2, 3]
        assert all(s.vm_id == "vm-1" for s in vm.slots)

    def test_slot_ids_are_unique(self):
        vm = VirtualMachine("vm-1", D3)
        assert len({s.slot_id for s in vm.slots}) == 4

    def test_utilization(self):
        vm = VirtualMachine("vm-1", D2)
        assert vm.utilization == 0.0
        vm.slot(0).assign("a#0")
        assert vm.utilization == pytest.approx(0.5)
        vm.slot(1).assign("b#0")
        assert vm.utilization == pytest.approx(1.0)

    def test_free_and_occupied_slots(self):
        vm = VirtualMachine("vm-1", D2)
        vm.slot(0).assign("a#0")
        assert [s.index for s in vm.free_slots] == [1]
        assert [s.index for s in vm.occupied_slots] == [0]

    def test_find_slot(self):
        vm = VirtualMachine("vm-1", D2)
        slot = vm.find_slot("vm-1:slot1")
        assert slot is not None and slot.index == 1
        assert vm.find_slot("vm-1:slot9") is None

    def test_active_reflects_provisioning(self):
        vm = VirtualMachine("vm-1", D1)
        assert not vm.active
        vm.provisioned_at = 0.0
        assert vm.active
        vm.deprovisioned_at = 10.0
        assert not vm.active
