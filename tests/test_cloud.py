"""Unit tests for the cloud provider, cluster and network model."""

from __future__ import annotations

import pytest

from repro.cluster.cloud import CloudProvider, Cluster, NetworkModel
from repro.cluster.vm import D1, D2, D3, VirtualMachine
from repro.sim import Simulator


class TestCloudProvider:
    def test_provision_creates_requested_count(self, sim):
        provider = CloudProvider(sim)
        vms = provider.provision(D2, 3)
        assert len(vms) == 3
        assert all(vm.vm_type is D2 for vm in vms)
        assert all(vm.active for vm in vms)

    def test_vm_ids_are_unique(self, sim):
        provider = CloudProvider(sim)
        vms = provider.provision(D1, 5) + provider.provision(D3, 2)
        assert len({vm.vm_id for vm in vms}) == 7

    def test_provision_zero_rejected(self, sim):
        with pytest.raises(ValueError):
            CloudProvider(sim).provision(D1, 0)

    def test_deprovision_requires_empty_slots(self, sim):
        provider = CloudProvider(sim)
        vm = provider.provision(D2, 1)[0]
        vm.slot(0).assign("task#0")
        with pytest.raises(ValueError):
            provider.deprovision(vm)
        vm.slot(0).release()
        provider.deprovision(vm)
        assert not vm.active

    def test_billing_rounds_up_to_minute(self, sim):
        provider = CloudProvider(sim, billing_granularity_s=60.0)
        vm = provider.provision(D2, 1)[0]
        sim.schedule(90.0, lambda: None)
        sim.run()
        provider.deprovision(vm)
        record = provider.billing_records[0]
        # 90 s rounds up to 120 s of billing.
        assert record.cost(sim.now) == pytest.approx(D2.hourly_cost * 120.0 / 3600.0)

    def test_total_cost_accrues_while_running(self, sim):
        provider = CloudProvider(sim)
        provider.provision(D3, 2)
        sim.schedule(600.0, lambda: None)
        sim.run()
        assert provider.total_cost() > 0.0


class TestCluster:
    def test_add_and_remove_vm(self, sim):
        provider = CloudProvider(sim)
        cluster = Cluster()
        vm = provider.provision(D2, 1)[0]
        cluster.add_vm(vm)
        assert vm.vm_id in cluster
        assert len(cluster) == 1
        removed = cluster.remove_vm(vm.vm_id)
        assert removed is vm
        assert len(cluster) == 0

    def test_duplicate_add_rejected(self, sim):
        cluster = Cluster()
        vm = CloudProvider(sim).provision(D1, 1)[0]
        cluster.add_vm(vm)
        with pytest.raises(ValueError):
            cluster.add_vm(vm)

    def test_remove_unknown_vm_rejected(self):
        with pytest.raises(KeyError):
            Cluster().remove_vm("nope")

    def test_slot_counting(self, sim):
        provider = CloudProvider(sim)
        cluster = Cluster(provider.provision(D2, 2) + provider.provision(D3, 1))
        assert cluster.total_slots == 2 * 2 + 4
        assert len(cluster.free_slots) == 8

    def test_find_slot_and_slot_vm(self, sim):
        provider = CloudProvider(sim)
        vm = provider.provision(D2, 1)[0]
        cluster = Cluster([vm])
        slot = cluster.find_slot(vm.slots[1].slot_id)
        assert slot is vm.slots[1]
        assert cluster.slot_vm(slot.slot_id) == vm.vm_id

    def test_find_unknown_slot_rejected(self, sim):
        cluster = Cluster(CloudProvider(sim).provision(D1, 1))
        with pytest.raises(KeyError):
            cluster.find_slot("ghost:slot0")

    def test_utilization_and_describe(self, sim):
        provider = CloudProvider(sim)
        vms = provider.provision(D2, 2)
        cluster = Cluster(vms)
        vms[0].slot(0).assign("a#0")
        assert cluster.utilization == pytest.approx(0.25)
        assert cluster.describe() == {"D2": 2}


class TestNetworkModel:
    def test_intra_vm_is_faster_than_inter_vm(self):
        network = NetworkModel(jitter_fraction=0.0)
        assert network.transfer_latency("vm-1", "vm-1") < network.transfer_latency("vm-1", "vm-2")

    def test_unknown_endpoint_treated_as_remote(self):
        network = NetworkModel(jitter_fraction=0.0)
        assert network.transfer_latency(None, "vm-1") == pytest.approx(network.inter_vm_latency_s)

    def test_jitter_stays_within_bounds(self):
        network = NetworkModel(intra_vm_latency_s=1.0, inter_vm_latency_s=2.0, jitter_fraction=0.1)
        for _ in range(200):
            latency = network.transfer_latency("a", "b")
            assert 1.8 <= latency <= 2.2

    def test_latency_never_negative(self):
        network = NetworkModel(intra_vm_latency_s=0.0, inter_vm_latency_s=0.0, jitter_fraction=0.5)
        assert network.transfer_latency("a", "b") >= 0.0


class TestConcurrentTenantAccounting:
    """CloudProvider/Cluster accounting when several tenants share one fleet.

    Multi-tenant controllers deprovision their vacated VMs independently and
    concurrently; the provider must make double releases loud, keep billing
    finalized exactly once, and refuse to release a VM a co-located tenant
    still occupies.
    """

    def test_release_from_is_exactly_once(self, sim):
        provider = CloudProvider(sim)
        cluster = Cluster()
        vm = provider.provision(D2, 1, name_prefix="shared")[0]
        cluster.add_vm(vm)
        sim.run(until=90.0)
        released = provider.release_from(cluster, vm.vm_id)
        assert released is vm and vm.vm_id not in cluster
        # The second tenant's release attempt cannot silently double-release:
        # the VM is gone from the cluster (KeyError), and a direct deprovision
        # of the returned VM object is rejected too.
        with pytest.raises(KeyError):
            provider.release_from(cluster, vm.vm_id)
        with pytest.raises(ValueError):
            provider.deprovision(vm)
        # Billing was finalized exactly once, at the release time.
        record = next(r for r in provider.billing_records if r.vm_id == vm.vm_id)
        assert record.deprovisioned_at == pytest.approx(90.0)

    def test_release_refused_while_other_tenant_occupies(self, sim):
        provider = CloudProvider(sim)
        cluster = Cluster()
        vm = provider.provision(D2, 1, name_prefix="shared")[0]
        cluster.add_vm(vm)
        vm.slots[0].assign("neighbour#0")
        with pytest.raises(ValueError, match="occupied"):
            provider.release_from(cluster, vm.vm_id)
        # Once the co-located tenant vacates, the release goes through.
        vm.slots[0].release()
        provider.release_from(cluster, vm.vm_id)
        assert vm.deprovisioned_at is not None

    def test_two_tenants_shrinking_at_once_release_disjoint_vms(self, sim):
        """Interleaved shrink completions: each tenant releases only its own
        empties; the shared co-located VM survives both and bills on."""
        provider = CloudProvider(sim)
        cluster = Cluster()
        a_vm, shared_vm, b_vm = provider.provision(D2, 3, name_prefix="w")
        for vm in (a_vm, shared_vm, b_vm):
            cluster.add_vm(vm)
        shared_vm.slots[0].assign("a#1")
        shared_vm.slots[1].assign("b#1")

        # Tenant A's migration completes: a_vm empty -> released; shared still
        # hosts b#1 after a#1 leaves? No -- A vacates only its own slot.
        shared_vm.slots[0].release()
        for vm_id in [a_vm.vm_id, shared_vm.vm_id]:
            if vm_id not in cluster:
                continue
            vm = cluster.vm(vm_id)
            if vm.occupied_slots:
                continue  # the controller's co-location guard
            provider.release_from(cluster, vm_id)
        assert a_vm.vm_id not in cluster
        assert shared_vm.vm_id in cluster  # b#1 still lives there

        # Tenant B completes right after: now the shared VM is empty too.
        shared_vm.slots[1].release()
        for vm_id in [b_vm.vm_id, shared_vm.vm_id]:
            vm = cluster.vm(vm_id)
            if vm.occupied_slots:
                continue
            provider.release_from(cluster, vm_id)
        assert shared_vm.vm_id not in cluster and b_vm.vm_id not in cluster
        # Every billing record closed exactly once.
        closed = [r for r in provider.billing_records if r.deprovisioned_at is not None]
        assert len(closed) == 3

    def test_slot_release_is_idempotent_but_assign_conflicts_raise(self, sim):
        provider = CloudProvider(sim)
        vm = provider.provision(D2, 1)[0]
        slot = vm.slots[0]
        slot.assign("a#0")
        with pytest.raises(ValueError):
            slot.assign("b#0")
        assert slot.release() == "a#0"
        assert slot.release() is None  # second release returns nothing, corrupts nothing
        slot.assign("b#0")
        assert slot.executor_id == "b#0"
