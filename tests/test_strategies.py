"""Integration tests for the three migration strategies on the tiny dataflow.

Each test runs a full (fast-clock) migration and checks the protocol phases,
the reliability guarantees and the relative behaviour the paper claims.
"""

from __future__ import annotations

import pytest

from repro.cluster.cloud import CloudProvider
from repro.cluster.vm import D3
from repro.core import (
    CaptureCheckpointResume,
    DefaultStormMigration,
    DrainCheckpointRestore,
    compute_migration_metrics,
    strategy_by_name,
)
from repro.core.strategy import STRATEGIES
from repro.engine.executor import ExecutorStatus
from repro.experiments.scenarios import plan_after_scaling

from tests.conftest import fanout_dataflow, make_runtime, tiny_dataflow


def run_migration(strategy_name, dataflow=None, migrate_at=3.0, run_until=30.0, seed=7):
    """Deploy the tiny dataflow, migrate it with the given strategy, run to completion."""
    runtime = make_runtime(dataflow=dataflow, strategy=strategy_name, seed=seed)
    runtime.start()
    runtime.sim.run(until=migrate_at)

    provider = CloudProvider(runtime.sim)
    new_vms = provider.provision(D3, 2, name_prefix="target")
    for vm in new_vms:
        runtime.cluster.add_vm(vm)
    new_plan = plan_after_scaling(runtime, [vm.vm_id for vm in new_vms])

    strategy_cls = strategy_by_name(strategy_name)
    strategy = strategy_cls(runtime, init_resend_interval_s=0.2)
    report = strategy.migrate(new_plan)
    runtime.sim.run(until=run_until)
    metrics = compute_migration_metrics(
        runtime.log,
        report,
        expected_output_rate=runtime.dataflow.output_rate(),
        dataflow_name=runtime.dataflow.name,
        scenario="test",
        end_time=runtime.sim.now,
    )
    return runtime, report, metrics


class TestRegistry:
    def test_all_three_strategies_registered(self):
        assert set(STRATEGIES) == {"dsm", "dcr", "ccr"}

    def test_lookup_by_name(self):
        assert strategy_by_name("dsm") is DefaultStormMigration
        assert strategy_by_name("DCR") is DrainCheckpointRestore
        assert strategy_by_name("ccr") is CaptureCheckpointResume

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError):
            strategy_by_name("magic")

    def test_runtime_config_requirements(self):
        assert DefaultStormMigration.runtime_config().reliability.ack_all_events
        assert DefaultStormMigration.runtime_config().reliability.periodic_checkpoint_interval_s
        assert not DrainCheckpointRestore.runtime_config().reliability.ack_all_events
        assert CaptureCheckpointResume.runtime_config().reliability.capture_on_prepare
        assert not DrainCheckpointRestore.runtime_config().reliability.capture_on_prepare


class TestProtocolPhases:
    @pytest.mark.parametrize("name", ["dcr", "ccr"])
    def test_dcr_ccr_phase_ordering(self, name):
        _, report, _ = run_migration(name)
        assert report.is_complete
        assert report.sources_paused_at <= report.drain_started_at
        assert report.drain_started_at <= report.prepare_completed_at
        assert report.prepare_completed_at <= report.commit_completed_at
        assert report.commit_completed_at <= report.rebalance_started_at
        assert report.rebalance_started_at < report.rebalance_command_completed_at
        assert report.rebalance_command_completed_at <= report.init_completed_at
        assert report.init_completed_at <= report.sources_unpaused_at

    def test_dsm_rebalances_immediately_without_pausing(self):
        _, report, metrics = run_migration("dsm", run_until=40.0)
        assert report.sources_paused_at is None
        assert report.rebalance_started_at == pytest.approx(report.requested_at)
        assert metrics.drain_capture_duration_s == 0.0

    @pytest.mark.parametrize("name", ["dcr", "ccr"])
    def test_sources_stay_paused_until_init_completes(self, name):
        runtime, report, _ = run_migration(name)
        unpaused = [r for r in runtime.log.lifecycle if r.status == "unpaused"]
        assert len(unpaused) == 1
        assert unpaused[0].time == pytest.approx(report.init_completed_at)

    @pytest.mark.parametrize("name", ["dsm", "dcr", "ccr"])
    def test_all_user_executors_running_after_migration(self, name):
        runtime, _, _ = run_migration(name, run_until=40.0)
        for executor in runtime.user_executors:
            assert executor.status is ExecutorStatus.RUNNING
            assert executor.initialized

    @pytest.mark.parametrize("name", ["dsm", "dcr", "ccr"])
    def test_executors_end_up_on_target_vms(self, name):
        runtime, _, _ = run_migration(name, run_until=40.0)
        for executor in runtime.user_executors:
            assert executor.vm_id.startswith("target")


class TestReliabilityGuarantees:
    @pytest.mark.parametrize("name", ["dcr", "ccr"])
    def test_no_message_loss_for_dcr_and_ccr(self, name):
        """Every root emitted before or during the migration reaches the sink."""
        runtime, _, metrics = run_migration(name, run_until=40.0)
        runtime.stop_sources()
        runtime.sim.run(until=60.0)
        emitted_roots = {e.root_id for e in runtime.log.source_emits}
        received_roots = {r.root_id for r in runtime.log.sink_receipts}
        assert emitted_roots == received_roots
        assert metrics.replayed_message_count == 0
        assert metrics.recovery_time_s is None

    @pytest.mark.parametrize("name", ["dcr", "ccr"])
    def test_no_duplicate_delivery_for_dcr_and_ccr(self, name):
        runtime, _, _ = run_migration(name, run_until=40.0)
        runtime.stop_sources()
        runtime.sim.run(until=60.0)
        roots = [r.root_id for r in runtime.log.sink_receipts]
        assert len(roots) == len(set(roots))

    def test_dsm_loses_in_flight_events_and_replays_them(self):
        runtime, _, metrics = run_migration("dsm", run_until=60.0)
        disrupted = (
            metrics.messages_lost_in_kills
            + runtime.log.dropped_count("data")
            + runtime.log.deferred_count()
        )
        assert disrupted > 0
        assert metrics.replayed_message_count > 0

    def test_dsm_is_at_least_once(self):
        """With acking, every emitted root is eventually seen at the sink (possibly more than once)."""
        runtime, _, _ = run_migration("dsm", run_until=60.0)
        runtime.stop_sources()
        runtime.sim.run(until=90.0)
        emitted_roots = {e.root_id for e in runtime.log.source_emits}
        received_roots = {r.root_id for r in runtime.log.sink_receipts}
        missing = emitted_roots - received_roots
        # Everything except possibly the last few in-flight events must arrive.
        assert len(missing) <= 3

    def test_ccr_restores_captured_events_after_rebalance(self):
        # Use a heavily utilised chain (90 % busy) so in-flight events exist at
        # capture time.
        busy = tiny_dataflow(rate=10.0, latency_s=0.09)
        runtime, report, _ = run_migration("ccr", dataflow=busy, run_until=40.0)
        # Some executor must have captured in-flight events, and they must have
        # been persisted (pending lists in the store) and replayed after INIT.
        committed_pending = sum(
            len(runtime.statestore.peek(key)["pending"])
            for key in runtime.statestore.keys()
            if runtime.statestore.peek(key) is not None
        )
        assert committed_pending > 0

    def test_dcr_drains_dataflow_before_rebalance(self):
        runtime, report, _ = run_migration("dcr", run_until=40.0)
        # At the moment the rebalance started, no data events were queued
        # anywhere (the drain guarantee): every kill lost zero queued events.
        kills_during_migration = [k for k in runtime.log.kills if k.time >= report.requested_at]
        assert kills_during_migration
        assert all(k.queued_events_lost == 0 for k in kills_during_migration)
        assert all(k.pending_events_lost == 0 for k in kills_during_migration)

    def test_ccr_kills_lose_no_unpersisted_events(self):
        runtime, report, _ = run_migration("ccr", run_until=40.0)
        kills_during_migration = [k for k in runtime.log.kills if k.time >= report.requested_at]
        assert kills_during_migration
        assert all(k.queued_events_lost == 0 for k in kills_during_migration)

    def test_stateful_task_state_survives_migration(self):
        runtime, report, _ = run_migration("dcr", run_until=40.0)
        executor = runtime.executor("a#0")
        receipts_before = sum(
            1 for e in runtime.log.source_emits if e.time < report.requested_at
        )
        # The restored counter must be at least the number of events processed
        # before the migration (state restored, then new events added to it).
        assert executor.state.get("processed", 0) >= receipts_before - 2


class TestRelativePerformance:
    def test_restore_ordering_ccr_fastest_dsm_slowest(self):
        results = {
            name: run_migration(name, dataflow=fanout_dataflow(), run_until=60.0)[2]
            for name in ("dsm", "dcr", "ccr")
        }
        assert results["ccr"].restore_duration_s <= results["dcr"].restore_duration_s + 1e-6
        assert results["dcr"].restore_duration_s < results["dsm"].restore_duration_s

    def test_only_dsm_has_recovery_time(self):
        for name in ("dcr", "ccr"):
            _, _, metrics = run_migration(name, run_until=40.0)
            assert metrics.recovery_time_s is None
        _, _, dsm_metrics = run_migration("dsm", run_until=60.0)
        assert dsm_metrics.recovery_time_s is not None

    def test_dcr_has_no_catchup_ccr_may(self):
        _, _, dcr_metrics = run_migration("dcr", run_until=40.0)
        assert dcr_metrics.catchup_time_s is None

    def test_capture_is_faster_than_drain(self):
        _, dcr_report, _ = run_migration("dcr", run_until=40.0)
        _, ccr_report, _ = run_migration("ccr", run_until=40.0)
        assert ccr_report.drain_capture_duration_s < dcr_report.drain_capture_duration_s
