"""Unit tests for the dataflow graph: validation, ordering and rate analysis."""

from __future__ import annotations

import pytest

from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.graph import Dataflow, DataflowValidationError, Edge
from repro.dataflow.task import SinkTask, SourceTask, Task


def simple_chain():
    builder = TopologyBuilder("chain")
    builder.add_source("src", rate=8.0)
    builder.add_task("a")
    builder.add_task("b", parallelism=2)
    builder.add_sink("sink")
    builder.chain("src", "a", "b", "sink")
    return builder.build()


def fan_graph():
    builder = TopologyBuilder("fan")
    builder.add_source("src", rate=8.0)
    builder.add_task("split")
    builder.add_task("left")
    builder.add_task("right")
    builder.add_task("merge")
    builder.add_sink("sink")
    builder.connect("src", "split")
    builder.fan_out("split", ["left", "right"])
    builder.fan_in(["left", "right"], "merge")
    builder.connect("merge", "sink")
    return builder.build()


class TestValidation:
    def test_duplicate_task_names_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow("bad", [SourceTask(name="x"), Task(name="x"), SinkTask(name="s")], [])

    def test_missing_source_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow("bad", [Task(name="a"), SinkTask(name="s")], [Edge("a", "s")])

    def test_missing_sink_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow("bad", [SourceTask(name="src"), Task(name="a")], [Edge("src", "a")])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow(
                "bad",
                [SourceTask(name="src"), Task(name="a"), SinkTask(name="s")],
                [Edge("src", "a"), Edge("a", "ghost")],
            )

    def test_unreachable_task_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow(
                "bad",
                [SourceTask(name="src"), Task(name="a"), Task(name="island"), SinkTask(name="s")],
                [Edge("src", "a"), Edge("a", "s"), Edge("island", "s")],
            )

    def test_dead_end_task_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow(
                "bad",
                [SourceTask(name="src"), Task(name="a"), Task(name="deadend"), SinkTask(name="s")],
                [Edge("src", "a"), Edge("src", "deadend"), Edge("a", "s")],
            )

    def test_cycle_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow(
                "bad",
                [SourceTask(name="src"), Task(name="a"), Task(name="b"), SinkTask(name="s")],
                [Edge("src", "a"), Edge("a", "b"), Edge("b", "a"), Edge("b", "s")],
            )

    def test_source_with_incoming_edge_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow(
                "bad",
                [SourceTask(name="src"), Task(name="a"), SinkTask(name="s")],
                [Edge("src", "a"), Edge("a", "src"), Edge("a", "s")],
            )

    def test_sink_with_outgoing_edge_rejected(self):
        with pytest.raises(DataflowValidationError):
            Dataflow(
                "bad",
                [SourceTask(name="src"), Task(name="a"), SinkTask(name="s")],
                [Edge("src", "a"), Edge("a", "s"), Edge("s", "a")],
            )


class TestStructureQueries:
    def test_topological_order_respects_edges(self):
        dataflow = fan_graph()
        order = dataflow.topological_order
        assert order.index("src") < order.index("split")
        assert order.index("split") < order.index("left")
        assert order.index("split") < order.index("right")
        assert order.index("left") < order.index("merge")
        assert order.index("merge") < order.index("sink")

    def test_sources_sinks_and_user_tasks(self):
        dataflow = fan_graph()
        assert [t.name for t in dataflow.sources] == ["src"]
        assert [t.name for t in dataflow.sinks] == ["sink"]
        assert {t.name for t in dataflow.user_tasks} == {"split", "left", "right", "merge"}

    def test_entry_and_exit_tasks(self):
        dataflow = fan_graph()
        assert [t.name for t in dataflow.entry_tasks] == ["split"]
        assert [t.name for t in dataflow.exit_tasks] == ["merge"]

    def test_successors_and_predecessors(self):
        dataflow = fan_graph()
        assert set(dataflow.successors("split")) == {"left", "right"}
        assert set(dataflow.predecessors("merge")) == {"left", "right"}

    def test_unknown_task_lookup_raises(self):
        with pytest.raises(KeyError):
            simple_chain().task("ghost")

    def test_in_and_out_edges(self):
        dataflow = fan_graph()
        assert {e.dst for e in dataflow.out_edges("split")} == {"left", "right"}
        assert {e.src for e in dataflow.in_edges("merge")} == {"left", "right"}


class TestRateAnalysis:
    def test_chain_rates_propagate(self):
        dataflow = simple_chain()
        rates = dataflow.input_rates()
        assert rates["a"] == pytest.approx(8.0)
        assert rates["b"] == pytest.approx(8.0)
        assert rates["sink"] == pytest.approx(8.0)

    def test_fan_out_duplicates_stream(self):
        dataflow = fan_graph()
        rates = dataflow.input_rates()
        assert rates["left"] == pytest.approx(8.0)
        assert rates["right"] == pytest.approx(8.0)
        assert rates["merge"] == pytest.approx(16.0)

    def test_selectivity_scales_downstream_rate(self):
        builder = TopologyBuilder("sel")
        builder.add_source("src", rate=8.0)
        builder.add_task("expand", selectivity=4.0)
        builder.add_task("next")
        builder.add_sink("sink")
        builder.chain("src", "expand", "next", "sink")
        dataflow = builder.build()
        rates = dataflow.input_rates()
        assert rates["expand"] == pytest.approx(8.0)
        assert rates["next"] == pytest.approx(32.0)

    def test_output_rate_sums_sink_inputs(self):
        assert fan_graph().output_rate() == pytest.approx(16.0)

    def test_critical_path_counts_user_tasks(self):
        assert simple_chain().critical_path_length() == 2
        assert fan_graph().critical_path_length() == 3

    def test_critical_path_latency(self):
        assert fan_graph().critical_path_latency() == pytest.approx(0.3)

    def test_auto_parallelism_one_instance_per_8_events(self):
        dataflow = fan_graph()
        dataflow.apply_auto_parallelism(events_per_instance=8.0)
        assert dataflow.task("split").parallelism == 1
        assert dataflow.task("merge").parallelism == 2

    def test_auto_parallelism_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            fan_graph().apply_auto_parallelism(events_per_instance=0.0)

    def test_total_instances_excludes_sources_and_sinks_by_default(self):
        dataflow = simple_chain()
        assert dataflow.total_instances() == 3
        assert dataflow.total_instances(include_sources_and_sinks=True) == 5

    def test_describe_mentions_every_task(self):
        description = fan_graph().describe()
        for name in ("src", "split", "left", "right", "merge", "sink"):
            assert name in description
