"""Unit tests for the Redis-like state store and its latency model."""

from __future__ import annotations

import pytest

from repro.reliability.statestore import StateStore
from repro.sim import Simulator


class TestLatencyModel:
    def test_write_latency_scales_with_size(self, sim):
        store = StateStore(sim)
        assert store.write_latency(10_000) > store.write_latency(100)

    def test_base_latency_applies_to_empty_write(self, sim):
        store = StateStore(sim, base_latency_s=0.002, per_byte_latency_s=0.0)
        assert store.write_latency(0) == pytest.approx(0.002)

    def test_paper_microbenchmark_2000_events_about_100ms(self, sim):
        """The paper: checkpointing 2000 events to Redis takes about 100 ms."""
        store = StateStore(sim)
        size = store.checkpoint_size_bytes(state_size_bytes=0, pending_events=2000)
        latency_ms = store.write_latency(size) * 1000.0
        assert 80.0 <= latency_ms <= 120.0

    def test_put_schedules_completion_after_latency(self, sim):
        store = StateStore(sim)
        completed_at = []
        latency = store.put("k", {"v": 1}, 1000, on_complete=lambda: completed_at.append(sim.now))
        sim.run()
        assert completed_at == [pytest.approx(latency)]

    def test_get_completion_receives_value(self, sim):
        store = StateStore(sim)
        store.put("k", {"v": 42}, 100)
        received = []
        store.get("k", on_complete=received.append)
        sim.run()
        assert received == [{"v": 42}]

    def test_get_missing_key_returns_default(self, sim):
        store = StateStore(sim)
        received = []
        store.get("missing", on_complete=received.append, default="fallback")
        sim.run()
        assert received == ["fallback"]


class TestStorageSemantics:
    def test_put_overwrites_and_increments_version(self, sim):
        store = StateStore(sim)
        store.put("k", "v1", 10)
        store.put("k", "v2", 10)
        assert store.peek("k") == "v2"
        assert store.version("k") == 2

    def test_version_of_missing_key_is_zero(self, sim):
        assert StateStore(sim).version("missing") == 0

    def test_delete(self, sim):
        store = StateStore(sim)
        store.put("k", "v", 10)
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert not store.contains("k")

    def test_keys_and_len(self, sim):
        store = StateStore(sim)
        store.put("a", 1, 1)
        store.put("b", 2, 1)
        assert sorted(store.keys()) == ["a", "b"]
        assert len(store) == 2

    def test_stats_track_operations(self, sim):
        store = StateStore(sim)
        store.put("a", 1, 500)
        store.get("a")
        store.get("missing")
        store.delete("a")
        assert store.stats.puts == 1
        assert store.stats.gets == 2
        assert store.stats.deletes == 1
        assert store.stats.bytes_written == 500
        assert store.stats.bytes_read == 500

    def test_checkpoint_size_includes_pending_events(self, sim):
        store = StateStore(sim)
        base = store.checkpoint_size_bytes(state_size_bytes=256, pending_events=0)
        with_pending = store.checkpoint_size_bytes(state_size_bytes=256, pending_events=10)
        assert with_pending == base + 10 * StateStore.EVENT_SIZE_BYTES
