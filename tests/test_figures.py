"""Tests for the per-figure drivers and plain-text formatting helpers."""

from __future__ import annotations

import pytest

from repro.dataflow.topologies import PAPER_ORDER
from repro.experiments.figures import (
    PAPER_FIG5,
    PAPER_FIG6,
    PAPER_FIG8,
    PAPER_REBALANCE_DURATION_S,
    STRATEGY_ORDER,
    statestore_micro,
    table1_rows,
)
from repro.experiments.formatting import (
    format_latency_series,
    format_rate_series,
    format_table,
    format_value,
    sparkline,
)
from repro.metrics.timeline import LatencyPoint, RatePoint


class TestPaperConstants:
    def test_fig5_covers_all_cells(self):
        for scaling in ("in", "out"):
            for dag in PAPER_ORDER:
                for strategy in STRATEGY_ORDER:
                    assert (scaling, dag, strategy) in PAPER_FIG5

    def test_fig6_covers_all_dags(self):
        for scaling in ("in", "out"):
            for dag in PAPER_ORDER:
                assert (scaling, dag) in PAPER_FIG6

    def test_fig8_covers_all_cells(self):
        for scaling in ("in", "out"):
            for dag in PAPER_ORDER:
                for strategy in STRATEGY_ORDER:
                    assert (scaling, dag, strategy) in PAPER_FIG8

    def test_paper_fig5_restore_ordering_dsm_worst(self):
        """Sanity-check the transcribed paper values themselves: DSM restore is always worst."""
        for scaling in ("in", "out"):
            for dag in PAPER_ORDER:
                dsm = PAPER_FIG5[(scaling, dag, "dsm")][0]
                dcr = PAPER_FIG5[(scaling, dag, "dcr")][0]
                ccr = PAPER_FIG5[(scaling, dag, "ccr")][0]
                assert dsm > dcr
                assert dsm > ccr


class TestTable1Driver:
    def test_every_reproduced_column_matches_paper(self):
        for row in table1_rows():
            assert row["tasks"] == row["tasks_paper"]
            assert row["instances"] == row["instances_paper"]
            assert row["default_vms"] == row["default_vms_paper"]
            assert row["scale_in_vms"] == row["scale_in_vms_paper"]
            assert row["scale_out_vms"] == row["scale_out_vms_paper"]

    def test_rows_in_paper_order(self):
        assert [row["dag"] for row in table1_rows()] == PAPER_ORDER


class TestStateStoreMicro:
    def test_microbenchmark_close_to_paper(self):
        result = statestore_micro()
        assert result["events"] == 2000
        assert result["measured_ms"] == pytest.approx(result["paper_ms"], rel=0.25)


class TestFormatting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(1.234) == "1.2"
        assert format_value("x") == "x"
        assert format_value(7) == "7"

    def test_format_table_alignment_and_content(self):
        rows = [{"dag": "grid", "restore_s": 15.5}, {"dag": "linear", "restore_s": None}]
        text = format_table(rows, title="Fig 5")
        lines = text.splitlines()
        assert lines[0] == "Fig 5"
        assert "dag" in lines[1] and "restore_s" in lines[1]
        assert "grid" in text and "15.5" in text and "-" in text

    def test_format_table_handles_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_sparkline_length_and_charset(self):
        line = sparkline([1, 2, 3, 4, 5, 4, 3, 2, 1], width=20)
        assert 0 < len(line) <= 20
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    def test_sparkline_downsamples_long_series(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_format_rate_and_latency_series(self):
        rate_points = [RatePoint(time=float(i), rate=8.0 + i) for i in range(10)]
        latency_points = [LatencyPoint(time=float(i), latency_s=0.5, samples=80) for i in range(10)]
        assert "ev/s" in format_rate_series("output", rate_points)
        assert "ms" in format_latency_series("dsm", latency_points)
        assert "(no data)" in format_rate_series("empty", [])


class TestParallelMatrix:
    """prefetch() fans hermetic cells across processes; results are identical."""

    KW = dict(migrate_at_s=30.0, post_migration_s=120.0, dags=["linear"])

    def test_parallel_prefetch_matches_serial(self):
        from repro.experiments.figures import (
            ExperimentMatrix,
            figure5_rows,
            figure6_rows,
            figure7_series,
            figure8_rows,
        )

        serial = ExperimentMatrix(**self.KW)
        parallel = ExperimentMatrix(**self.KW)
        computed = parallel.prefetch(scalings=("in",), processes=2)
        assert computed == 3  # one cell per strategy
        assert parallel.prefetch(scalings=("in",), processes=2) == 0  # cached

        assert figure5_rows(parallel, "in") == figure5_rows(serial, "in")
        assert figure6_rows(parallel, "in") == figure6_rows(serial, "in")
        assert figure8_rows(parallel, "in") == figure8_rows(serial, "in")
        assert figure7_series(parallel, dag="linear", scaling="in") == \
            figure7_series(serial, dag="linear", scaling="in")
        # The parallel matrix never had to materialize a full in-process run.
        assert parallel._cache == {}

    def test_custom_resolution_falls_back_to_full_run(self):
        from repro.experiments.figures import ExperimentMatrix, figure7_series

        matrix = ExperimentMatrix(**self.KW)
        matrix.prefetch(scalings=("in",), processes=1)
        series = figure7_series(matrix, dag="linear", scaling="in", bin_s=2.0)
        assert matrix._cache  # the non-default bin size needed the real log
        assert series["ccr"]["input"]


class TestColumnarDefaultFigures:
    """``columnar_log`` defaults on; the committed figure matrix must not move.

    A figure cell run on the columnar backend and one forced onto the classic
    row store (the one-flag fallback, ``columnar_log=False``) must produce
    identical log digests and identical figure numbers — the guarantee that
    flipping the default left every committed ``results/fig*.txt`` byte-
    identical.
    """

    def test_figure_cell_digest_identical_across_log_backends(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.engine.config import RuntimeConfig
        from repro.experiments.scenarios import run_migration_experiment
        from repro.sim.shard import log_digest

        columnar = run_migration_experiment(dag="linear", strategy="dsm", scaling="in")
        assert type(columnar.runtime.log).__name__ == "ColumnarEventLog"

        original = RuntimeConfig.for_dsm.__func__

        def classic_for_dsm(cls, seed=2018):
            config = original(cls, seed=seed)
            config.columnar_log = False  # the one-flag classic fallback
            return config

        monkeypatch.setattr(RuntimeConfig, "for_dsm", classmethod(classic_for_dsm))
        classic = run_migration_experiment(dag="linear", strategy="dsm", scaling="in")
        assert type(classic.runtime.log).__name__ == "EventLog"

        assert log_digest(classic.log) == log_digest(columnar.log)
        assert (classic.metrics.replayed_message_count
                == columnar.metrics.replayed_message_count)
