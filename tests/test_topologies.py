"""Unit tests for the paper's five evaluation dataflows (Fig. 4 / Table 1)."""

from __future__ import annotations

import pytest

from repro.dataflow import topologies
from repro.dataflow.topologies import PAPER_ORDER, TABLE1


class TestTable1Fidelity:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_user_task_count_matches_table1(self, name):
        dataflow = topologies.by_name(name)
        assert len(dataflow.user_tasks) == TABLE1[name].tasks

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_instance_count_matches_table1(self, name):
        dataflow = topologies.by_name(name)
        assert dataflow.total_instances() == TABLE1[name].task_instances

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_single_source_and_sink(self, name):
        dataflow = topologies.by_name(name)
        assert len(dataflow.sources) == 1
        assert len(dataflow.sinks) == 1

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_source_rate_is_8_events_per_second(self, name):
        dataflow = topologies.by_name(name)
        assert dataflow.sources[0].rate == pytest.approx(8.0)

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_task_latency_is_100ms(self, name):
        dataflow = topologies.by_name(name)
        for task in dataflow.user_tasks:
            assert task.latency_s == pytest.approx(0.1)

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_all_tasks_are_one_to_one_selectivity(self, name):
        dataflow = topologies.by_name(name)
        for task in dataflow.user_tasks:
            assert task.selectivity == pytest.approx(1.0)

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_at_least_one_stateful_task(self, name):
        dataflow = topologies.by_name(name)
        assert any(task.stateful for task in dataflow.user_tasks)

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_per_instance_load_within_peak_rate(self, name):
        """Each instance must see at most the 10 ev/s peak rate (100 ms tasks)."""
        dataflow = topologies.by_name(name)
        rates = dataflow.input_rates()
        for task in dataflow.user_tasks:
            assert rates[task.name] / task.parallelism <= 10.0 + 1e-9


class TestStructures:
    def test_linear_is_a_chain(self):
        dataflow = topologies.linear()
        for task in dataflow.user_tasks:
            assert len(dataflow.successors(task.name)) == 1
            assert len(dataflow.predecessors(task.name)) == 1
        assert dataflow.critical_path_length() == 5

    def test_parametric_linear_length(self):
        dataflow = topologies.linear(50)
        assert len(dataflow.user_tasks) == 50
        assert dataflow.total_instances() == 50
        assert dataflow.critical_path_length() == 50

    def test_linear_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            topologies.linear(0)

    def test_diamond_has_fan_out_and_fan_in(self):
        dataflow = topologies.diamond()
        assert set(dataflow.successors("split")) == {"branch_a", "branch_b"}
        assert set(dataflow.predecessors("merge")) == {"branch_a", "branch_b"}

    def test_star_hub_connects_spokes(self):
        dataflow = topologies.star()
        assert set(dataflow.predecessors("hub")) == {"spoke_in_a", "spoke_in_b"}
        assert set(dataflow.successors("hub")) == {"spoke_out_a", "spoke_out_b"}

    def test_grid_output_rate_is_4x_input(self):
        """The paper reports a 1:4 DAG selectivity for Grid (8 ev/s in, 32 ev/s out)."""
        dataflow = topologies.grid()
        assert dataflow.output_rate() == pytest.approx(32.0)

    def test_traffic_output_rate_is_4x_input(self):
        dataflow = topologies.traffic()
        assert dataflow.output_rate() == pytest.approx(32.0)

    def test_star_output_rate(self):
        assert topologies.star().output_rate() == pytest.approx(32.0)

    def test_application_dags_are_deeper_than_micro_dags(self):
        assert topologies.grid().critical_path_length() > topologies.star().critical_path_length()
        assert topologies.traffic().critical_path_length() >= topologies.star().critical_path_length()

    def test_by_name_rejects_unknown(self):
        with pytest.raises(KeyError):
            topologies.by_name("nonexistent")

    def test_factories_produce_fresh_objects(self):
        a = topologies.grid()
        b = topologies.grid()
        assert a is not b
        a.task("parse").parallelism = 99
        assert b.task("parse").parallelism == 1


class TestKeyedVariants:
    """FIELDS-grouped variants of the application DAGs (per-entity state)."""

    @pytest.mark.parametrize("name,base,keyed_tasks", [
        ("traffic-keyed", "traffic", {"traffic_state"}),
        ("grid-keyed", "grid", {"forecast_merge", "demand_predict"}),
    ])
    def test_structure_matches_base_dag(self, name, base, keyed_tasks):
        keyed = topologies.by_name(name)
        plain = topologies.by_name(base)
        assert keyed.total_instances() == plain.total_instances()
        assert {t.name for t in keyed.user_tasks} == {t.name for t in plain.user_tasks}
        assert {(e.src, e.dst) for e in keyed.edges} == {(e.src, e.dst) for e in plain.edges}
        for edge in keyed.edges:
            expected = (
                topologies.Grouping.FIELDS
                if edge.dst in keyed_tasks
                else next(e for e in plain.edges
                          if (e.src, e.dst) == (edge.src, edge.dst)).grouping
            )
            assert edge.grouping is expected, (edge.src, edge.dst)

    def test_source_payloads_carry_stable_keys(self):
        keyed = topologies.by_name("traffic-keyed")
        factory = keyed.sources[0].payload_factory
        assert factory(3)["key"] == factory(3 + topologies.KEYED_NUM_KEYS)["key"]
        assert factory(1)["key"] != factory(2)["key"]

    def test_keyed_registry_does_not_leak_into_paper_matrix(self):
        assert "traffic-keyed" not in topologies.PAPER_TOPOLOGIES
        assert "traffic-keyed" not in PAPER_ORDER
        assert "traffic-keyed" in topologies.ALL_TOPOLOGIES
        with pytest.raises(KeyError):
            topologies.by_name("linear-keyed")

    def test_keyed_state_partitions_by_field_hash_at_runtime(self):
        """Run the keyed traffic DAG briefly: every per-key counter lives on
        exactly the instance FIELDS routing sends that key to."""
        from repro.dataflow.grouping import stable_field_index
        from repro.reliability.repartition import PARTITIONED_STATE_KEY
        from tests.conftest import make_runtime

        dataflow = topologies.traffic_keyed(latency_s=0.005)
        runtime = make_runtime(dataflow=dataflow, worker_vms=7)
        runtime.start()
        runtime.sim.run(until=20.0)
        runtime.stop_sources()
        runtime.sim.run(until=30.0)

        task = dataflow.task("traffic_state")
        seen_keys = 0
        for index in range(task.parallelism):
            executor = runtime.executors[f"traffic_state#{index}"]
            counts = executor.state.get(PARTITIONED_STATE_KEY, {})
            for key in counts:
                assert stable_field_index(key, task.parallelism) == index
            seen_keys += len(counts)
        assert seen_keys > 0, "keyed state never materialized"
