"""Smoke tests for the runnable examples.

The examples are part of the public deliverable, so the suite checks that they
import cleanly and that the fast ones run end to end.  The slower comparison
example is only imported (its full run is exercised by the benchmark harness
through the same drivers).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing its __main__ block."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"examples.{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart.py",
    "compare_strategies_grid.py",
    "elastic_traffic_scaling.py",
    "consolidation_cost_study.py",
]


class TestExamples:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None))

    def test_quickstart_runs_end_to_end(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "Paper §4 metrics" in output
        assert "Events lost:               0" in output
        assert "replayed:           0" in output

    def test_consolidation_study_runs_end_to_end(self, capsys, monkeypatch):
        module = load_example("consolidation_cost_study.py")
        monkeypatch.setattr(sys, "argv", ["consolidation_cost_study.py", "--scheduler", "packing"])
        module.main()
        output = capsys.readouterr().out
        assert "before (over-provisioned)" in output
        assert "after (consolidated)" in output
        assert "without losing or replaying a single message" in output
