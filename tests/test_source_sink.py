"""Unit tests for source executors (rate, pause, backlog, replay, throttle) and sinks."""

from __future__ import annotations

import pytest

from tests.conftest import make_runtime, tiny_dataflow


def started_runtime(strategy="dcr", seed=7):
    runtime = make_runtime(strategy=strategy, seed=seed)
    runtime.start()
    return runtime


class TestSourceRate:
    def test_emission_rate_matches_configuration(self):
        runtime = started_runtime()
        runtime.sim.run(until=10.0)
        source = runtime.source_executors[0]
        # 10 ev/s for 10 s of simulated time.
        assert source.emitted_count == pytest.approx(100, abs=2)

    def test_emissions_are_logged(self):
        runtime = started_runtime()
        runtime.sim.run(until=5.0)
        assert len(runtime.log.source_emits) == runtime.source_executors[0].emitted_count

    def test_stop_halts_generation(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.stop_sources()
        emitted = runtime.source_executors[0].emitted_count
        runtime.sim.run(until=5.0)
        assert runtime.source_executors[0].emitted_count == emitted


class TestPauseAndBacklog:
    def test_pause_stops_emission_and_builds_backlog(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        source = runtime.source_executors[0]
        emitted_at_pause = source.emitted_count
        runtime.sim.run(until=5.0)
        assert source.emitted_count == emitted_at_pause
        assert source.backlog_size == pytest.approx(30, abs=2)

    def test_unpause_drains_backlog(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        runtime.sim.run(until=4.0)
        source = runtime.source_executors[0]
        backlog = source.backlog_size
        assert backlog > 0
        runtime.unpause_sources()
        runtime.sim.run(until=6.0)
        assert source.backlog_size == 0
        backlog_emits = [e for e in runtime.log.source_emits if e.from_backlog]
        assert len(backlog_emits) >= backlog

    def test_backlog_drains_faster_than_nominal_rate(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        runtime.sim.run(until=6.0)
        runtime.unpause_sources()
        runtime.sim.run(until=7.0)
        # 40 backlogged events must drain within roughly a second at the burst
        # rate (200 ev/s in the fast test config), far above the 10 ev/s rate.
        emits_in_burst = runtime.log.emits_between(6.0, 7.0)
        assert len(emits_in_burst) > 20

    def test_unpause_without_pause_is_a_noop(self):
        runtime = started_runtime()
        runtime.sim.run(until=1.0)
        runtime.unpause_sources()
        runtime.sim.run(until=2.0)
        assert runtime.source_executors[0].emitted_count == pytest.approx(20, abs=2)


class TestReplayAndThrottle:
    def test_failed_roots_are_replayed_when_acking_enabled(self):
        runtime = started_runtime(strategy="dsm")
        runtime.sim.run(until=2.0)
        # Kill a middle task so downstream trees cannot complete.
        runtime.executor("b#0").kill()
        runtime.executor("b#1").kill()
        runtime.sim.run(until=12.0)  # past the 5 s fast ack timeout
        replays = [e for e in runtime.log.source_emits if e.replay_count > 0]
        assert replays
        assert runtime.source_executors[0].replayed_count == len(replays)

    def test_no_replays_without_acking(self):
        runtime = started_runtime(strategy="dcr")
        runtime.sim.run(until=2.0)
        runtime.executor("b#0").kill()
        runtime.executor("b#1").kill()
        runtime.sim.run(until=12.0)
        assert runtime.log.replay_emits == 0

    def test_completed_roots_are_dropped_from_replay_cache(self):
        runtime = started_runtime(strategy="dsm")
        runtime.sim.run(until=5.0)
        source = runtime.source_executors[0]
        # All roots processed end-to-end should have been acked and evicted;
        # only the most recent in-flight ones may remain cached.
        assert len(source._cache) < 10

    def test_max_spout_pending_throttles_emission(self):
        runtime = started_runtime(strategy="dsm")
        runtime.reliability.max_spout_pending = 10
        runtime.sim.run(until=1.0)
        # Break the dataflow so nothing acks; pending grows to the small cap.
        runtime.executor("a#0").kill()
        runtime.sim.run(until=4.9)  # before the 5 s ack timeout fires
        assert runtime.acker.pending_count <= 10
        source = runtime.source_executors[0]
        # By default the throttle is work-conserving: ticks go to the backlog.
        assert source.backlog_size > 0
        assert source.skipped_ticks == 0
        assert source.emitted_count < 49

    def test_throttled_ticks_can_be_skipped(self):
        runtime = started_runtime(strategy="dsm")
        runtime.reliability.max_spout_pending = 10
        runtime.reliability.throttled_ticks_generate_backlog = False
        runtime.sim.run(until=1.0)
        runtime.executor("a#0").kill()
        runtime.sim.run(until=4.9)
        source = runtime.source_executors[0]
        # A purely rate-limited spout never generates the throttled ticks.
        assert source.skipped_ticks > 0
        assert source.backlog_size == 0

    def test_replay_preserves_root_identity(self):
        runtime = started_runtime(strategy="dsm")
        runtime.sim.run(until=2.0)
        runtime.executor("b#0").kill()
        runtime.executor("b#1").kill()
        runtime.sim.run(until=12.0)
        replays = [e for e in runtime.log.source_emits if e.replay_count > 0]
        first_emits = {e.root_id for e in runtime.log.source_emits if e.replay_count == 0}
        assert all(r.root_id in first_emits for r in replays)


class TestSink:
    def test_sink_records_latency_relative_to_emission(self):
        runtime = started_runtime()
        runtime.sim.run(until=5.0)
        for receipt in runtime.log.sink_receipts:
            assert receipt.latency_s > 0.0
            assert receipt.time > receipt.root_emitted_at

    def test_sink_receives_every_root_exactly_once_in_steady_state(self):
        runtime = started_runtime()
        runtime.sim.run(until=10.0)
        roots_received = [r.root_id for r in runtime.log.sink_receipts]
        assert len(roots_received) == len(set(roots_received))
