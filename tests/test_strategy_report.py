"""Tests for the MigrationReport derived properties and the strategy base class."""

from __future__ import annotations

import pytest

from repro.core.strategy import MigrationReport, MigrationStrategy, STRATEGIES, register_strategy


class TestMigrationReport:
    def _report(self):
        return MigrationReport(strategy="dcr", requested_at=100.0)

    def test_incomplete_report_properties(self):
        report = self._report()
        assert not report.is_complete
        assert report.drain_capture_duration_s is None
        assert report.rebalance_duration_s is None
        assert report.protocol_duration_s is None

    def test_drain_capture_duration(self):
        report = self._report()
        report.rebalance_started_at = 102.5
        assert report.drain_capture_duration_s == pytest.approx(2.5)

    def test_rebalance_duration(self):
        report = self._report()
        report.rebalance_started_at = 102.0
        report.rebalance_command_completed_at = 109.3
        assert report.rebalance_duration_s == pytest.approx(7.3)

    def test_protocol_duration(self):
        report = self._report()
        report.completed_at = 130.0
        assert report.is_complete
        assert report.protocol_duration_s == pytest.approx(30.0)

    def test_notes_are_free_form(self):
        report = self._report()
        report.notes["logic_updated:parse"] = 123.0
        assert report.notes["logic_updated:parse"] == 123.0


class TestStrategyRegistry:
    def test_register_strategy_decorator(self):
        @register_strategy
        class _Dummy(MigrationStrategy):
            name = "dummy-test-strategy"

            def migrate(self, new_plan, on_complete=None):  # pragma: no cover - not exercised
                return self._new_report()

        try:
            assert STRATEGIES["dummy-test-strategy"] is _Dummy
        finally:
            STRATEGIES.pop("dummy-test-strategy", None)

    def test_base_runtime_config_is_neutral(self):
        config = MigrationStrategy.runtime_config(seed=4)
        assert config.seed == 4
        assert not config.reliability.ack_all_events
