"""Unit tests for the forecast stage: policies on synthetic rate series.

Pins down the properties the predictive control plane relies on:

* EWMA's lag after a step is bounded by ``(old - new) * (1 - alpha)^n``;
* Holt's trend smoothing extrapolates a steady ramp ahead of the last
  observation (where the provisioning lead time comes from), and the
  seasonal variant learns a diurnal cycle;
* the profile-lookahead oracle is *exact* on step profiles;
* the reactive policy is the identity forecast.
"""

from __future__ import annotations

import math

import pytest

from repro.elastic.forecast import (
    FORECAST_POLICIES,
    EwmaPolicy,
    HoltWintersPolicy,
    ProfileLookaheadPolicy,
    ReactivePolicy,
    forecast_policy_by_name,
)
from repro.workloads.profiles import DiurnalProfile, StepProfile, profile_by_name

INTERVAL = 15.0


def feed(policy, rates, start=0.0, interval=INTERVAL):
    """Observe a series of rates at a fixed sampling interval; return last time."""
    t = start
    for rate in rates:
        t += interval
        policy.observe(t, rate)
    return t


class TestReactivePolicy:
    def test_identity_forecast(self):
        policy = ReactivePolicy()
        assert policy.forecast(0.0, 60.0) == 0.0
        t = feed(policy, [8.0, 9.5, 12.0])
        assert policy.forecast(t, 60.0) == 12.0
        # Horizon-independent: the future is always the last sample.
        assert policy.forecast(t, 600.0) == 12.0


class TestEwmaPolicy:
    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EwmaPolicy(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaPolicy(alpha=1.5)

    def test_step_lag_bound(self):
        """After n samples of a step 8 -> 24, the remaining lag is exactly
        ``(24 - 8) * (1 - alpha)^n``."""
        alpha = 0.5
        policy = EwmaPolicy(alpha=alpha)
        t = feed(policy, [8.0] * 5)
        assert policy.forecast(t, 60.0) == pytest.approx(8.0)
        for n in range(1, 6):
            t += INTERVAL
            policy.observe(t, 24.0)
            expected = 24.0 - (24.0 - 8.0) * (1.0 - alpha) ** n
            assert policy.forecast(t, 60.0) == pytest.approx(expected)

    def test_forecast_stays_between_old_and_new_level(self):
        policy = EwmaPolicy(alpha=0.3)
        t = feed(policy, [8.0] * 3 + [24.0] * 4)
        level = policy.forecast(t, 60.0)
        assert 8.0 < level < 24.0


class TestHoltWintersPolicy:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            HoltWintersPolicy(alpha=0.0)
        with pytest.raises(ValueError):
            HoltWintersPolicy(beta=1.5)
        with pytest.raises(ValueError):
            HoltWintersPolicy(season_period_s=-1.0)
        with pytest.raises(ValueError):
            HoltWintersPolicy(season_buckets=0)

    def test_trend_capture_on_ramp(self):
        """A steady ramp is extrapolated ahead: the forecast leads the last
        observation, and a one-interval horizon is close to the true next
        value of the ramp."""
        policy = HoltWintersPolicy(alpha=0.5, beta=0.3)
        slope_per_sample = 2.0
        rates = [8.0 + slope_per_sample * i for i in range(12)]
        t = feed(policy, rates)
        last = rates[-1]
        one_ahead = policy.forecast(t, INTERVAL)
        assert one_ahead > last, "a positive trend must lead the last observation"
        assert one_ahead == pytest.approx(last + slope_per_sample, rel=0.25)
        # Longer horizons extrapolate further.
        assert policy.forecast(t, 4 * INTERVAL) > one_ahead

    def test_flat_series_has_no_spurious_trend(self):
        policy = HoltWintersPolicy()
        t = feed(policy, [8.0] * 10)
        assert policy.forecast(t, 60.0) == pytest.approx(8.0, rel=0.01)

    def test_seasonal_variant_learns_diurnal_cycle(self):
        """After one full cycle, forecasting a quarter period ahead from the
        trough anticipates the climb that plain level+trend cannot see."""
        period = 240 * INTERVAL
        profile = DiurnalProfile(base_rate=8.0, peak_multiplier=3.0, period_s=period)
        seasonal = HoltWintersPolicy(season_period_s=period, season_buckets=24)
        t = 0.0
        for _ in range(480):  # two full cycles
            t += INTERVAL
            seasonal.observe(t, profile.rate_at(t))
        horizon = period / 4.0
        target = profile.rate_at(t + horizon)
        prediction = seasonal.forecast(t, horizon)
        # t is at a cycle boundary (trough, 8 ev/s); a quarter period ahead
        # the true rate is mid-climb (16 ev/s).  The seasonal bucket supplies
        # most of that climb.
        assert target == pytest.approx(16.0, rel=0.05)
        assert abs(prediction - target) < abs(profile.rate_at(t) - target), (
            "seasonal forecast must beat assuming the current (trough) rate"
        )

    def test_forecast_never_negative(self):
        policy = HoltWintersPolicy(alpha=0.9, beta=0.9)
        t = feed(policy, [32.0, 16.0, 4.0, 1.0])
        assert policy.forecast(t, 10 * INTERVAL) >= 0.0


class TestProfileLookaheadPolicy:
    def test_exact_on_step_profiles(self):
        profile = StepProfile(steps=[(0.0, 8.0), (300.0, 24.0), (600.0, 8.0)])
        policy = ProfileLookaheadPolicy(profile)
        # Exactness: the forecast IS the profile read at now + horizon.
        assert policy.forecast(200.0, 60.0) == 8.0
        assert policy.forecast(250.0, 60.0) == 24.0   # sees the step coming
        assert policy.forecast(299.0, 1.0) == 24.0
        assert policy.forecast(550.0, 60.0) == 8.0    # sees the step ending
        assert policy.forecast(0.0, 0.0) == 8.0

    def test_requires_profile(self):
        with pytest.raises(ValueError):
            ProfileLookaheadPolicy(None)  # type: ignore[arg-type]


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(FORECAST_POLICIES) == {"reactive", "ewma", "holt-winters", "lookahead"}

    def test_by_name_constructs(self):
        assert isinstance(forecast_policy_by_name("reactive"), ReactivePolicy)
        assert isinstance(forecast_policy_by_name("ewma", alpha=0.2), EwmaPolicy)
        profile = StepProfile(steps=[(0.0, 8.0)])
        lookahead = forecast_policy_by_name("lookahead", profile=profile)
        assert lookahead.profile is profile

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            forecast_policy_by_name("crystal-ball")

    def test_lookahead_requires_profile(self):
        with pytest.raises(ValueError):
            forecast_policy_by_name("lookahead")


class TestDiurnalProfile:
    def test_shape(self):
        profile = DiurnalProfile(base_rate=8.0, peak_multiplier=3.0, period_s=100.0)
        assert profile.rate_at(0.0) == pytest.approx(8.0)
        assert profile.rate_at(50.0) == pytest.approx(24.0)   # peak at half period
        assert profile.rate_at(100.0) == pytest.approx(8.0)   # back at the trough
        assert profile.rate_at(250.0) == pytest.approx(24.0)  # periodic
        rates = [profile.rate_at(t) for t in range(0, 100, 5)]
        assert min(rates) >= 8.0 - 1e-9 and max(rates) <= 24.0 + 1e-9

    def test_preset_registered(self):
        profile = profile_by_name("diurnal", base_rate=8.0, duration_s=600.0)
        assert isinstance(profile, DiurnalProfile)
        assert profile.period_s == pytest.approx(300.0)  # two cycles per run
        assert math.isclose(profile.rate_at(0.0), 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(period_s=0.0)
        with pytest.raises(ValueError):
            DiurnalProfile(peak_multiplier=0.5)
