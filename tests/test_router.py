"""Unit tests for event routing: groupings, FIFO channels and anchoring."""

from __future__ import annotations

import pytest

from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.event import Event
from repro.dataflow.grouping import Grouping

from tests.conftest import make_runtime


def grouping_dataflow(grouping: Grouping):
    builder = TopologyBuilder(f"grouping-{grouping.value}")
    builder.add_source("source", rate=20.0)
    builder.add_task("up", parallelism=1, latency_s=0.01)
    builder.add_task("down", parallelism=3, latency_s=0.01)
    builder.add_sink("sink")
    builder.connect("source", "up")
    builder.connect("up", "down", grouping=grouping)
    builder.connect("down", "sink")
    return builder.build()


def run_with_grouping(grouping: Grouping, until: float = 5.0):
    runtime = make_runtime(dataflow=grouping_dataflow(grouping), worker_vms=4)
    runtime.start()
    runtime.sim.run(until=until)
    return runtime


class TestGroupings:
    def test_shuffle_balances_across_instances(self):
        runtime = run_with_grouping(Grouping.SHUFFLE)
        counts = [runtime.executor(f"down#{i}").processed_count for i in range(3)]
        assert all(c > 0 for c in counts)
        assert max(counts) - min(counts) <= 1

    def test_all_grouping_duplicates_to_every_instance(self):
        runtime = run_with_grouping(Grouping.ALL)
        up_count = runtime.executor("up#0").processed_count
        counts = [runtime.executor(f"down#{i}").processed_count for i in range(3)]
        # Every instance sees (almost) every event emitted by the upstream task.
        for count in counts:
            assert count >= up_count - 3

    def test_global_grouping_uses_first_instance_only(self):
        runtime = run_with_grouping(Grouping.GLOBAL)
        assert runtime.executor("down#0").processed_count > 0
        assert runtime.executor("down#1").processed_count == 0
        assert runtime.executor("down#2").processed_count == 0

    def test_fields_grouping_is_deterministic_per_key(self):
        runtime = make_runtime(dataflow=grouping_dataflow(Grouping.FIELDS), worker_vms=4)
        router = runtime.router
        dataflow = runtime.dataflow
        edge = [e for e in dataflow.edges if e.grouping is Grouping.FIELDS][0]
        event = Event.data("up", payload={"key": "vehicle-17"})
        first = router._select_targets("up#0", edge, event)
        second = router._select_targets("up#0", edge, event.copy_for_edge())
        assert first == second


class TestDeliverySemantics:
    def test_per_channel_fifo_ordering(self):
        """Deliveries on the same (sender, receiver) channel never reorder."""
        runtime = make_runtime()
        runtime.start()
        delivered = []
        original_deliver = runtime.deliver

        def spy(executor_id, event, sender_id):
            if sender_id == "a#0" and event.is_data:
                delivered.append((executor_id, event.payload.get("seq")))
            original_deliver(executor_id, event, sender_id)

        runtime.deliver = spy
        runtime.router.runtime = runtime
        runtime.sim.run(until=5.0)
        for target in ("b#0", "b#1"):
            sequence = [seq for executor_id, seq in delivered if executor_id == target]
            assert sequence == sorted(sequence)

    def test_anchoring_only_when_acking_enabled(self):
        dcr_runtime = make_runtime(strategy="dcr")
        dcr_runtime.start()
        dcr_runtime.sim.run(until=2.0)
        assert dcr_runtime.acker.stats.anchors == 0

        dsm_runtime = make_runtime(strategy="dsm")
        dsm_runtime.start()
        dsm_runtime.sim.run(until=2.0)
        assert dsm_runtime.acker.stats.anchors > 0

    def test_routed_count_increases(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=2.0)
        assert runtime.router.routed_count > 0

    def test_send_direct_reaches_specific_executor(self):
        runtime = make_runtime()
        runtime.start()
        event = Event.data("source", payload={"direct": True}, created_at=runtime.sim.now)
        runtime.router.send_direct("source#0", "c#0", event)
        runtime.sim.run(until=1.0)
        assert runtime.executor("c#0").processed_count >= 1


class TestBatchedDeliveries:
    """The batched same-channel delivery path (multi-event route() calls)."""

    def _batch_runtime(self, grouping=Grouping.SHUFFLE):
        runtime = make_runtime(dataflow=grouping_dataflow(grouping), worker_vms=4)
        for executor in runtime.executors.values():
            if executor.task.kind.value != "source":
                executor.start()
        return runtime

    def test_batch_delivers_every_event_in_fifo_order(self):
        runtime = self._batch_runtime(Grouping.ALL)
        delivered = []
        original_deliver = runtime.deliver

        def spy(executor_id, event, sender_id):
            delivered.append((runtime.sim.now, executor_id, event.payload["seq"]))
            original_deliver(executor_id, event, sender_id)

        runtime.deliver = spy
        events = [Event.data("up", payload={"seq": i}, created_at=0.0) for i in range(16)]
        runtime.router.route("up#0", "up", events)
        runtime.sim.run(until=5.0)

        batch = [entry for entry in delivered if entry[1].startswith("down#")]
        # ALL grouping: every instance sees every event of the batch.
        assert len(batch) == 16 * 3
        for target in ("down#0", "down#1", "down#2"):
            sequence = [seq for _, executor_id, seq in batch if executor_id == target]
            assert sequence == list(range(16))
            times = [t for t, executor_id, _ in batch if executor_id == target]
            assert times == sorted(times)
            assert len(set(times)) == len(times)  # strictly increasing (FIFO spacing)

    def test_batch_uses_one_inflight_heap_entry_per_channel(self):
        runtime = self._batch_runtime(Grouping.ALL)
        before = runtime.sim.pending_events
        events = [Event.data("up", payload={"seq": i}, created_at=0.0) for i in range(16)]
        runtime.router.route("up#0", "up", events)
        scheduled = runtime.sim.pending_events - before
        # 48 deliveries ride on 3 batch callbacks (one per channel), not 48.
        assert scheduled == 3
        runtime.sim.run(until=5.0)
        assert sum(runtime.executor(f"down#{i}").processed_count for i in range(3)) == 48

    def test_batch_results_match_per_event_routing(self):
        """Routing a batch equals routing the same events one at a time."""

        def collect(route_batched):
            runtime = self._batch_runtime(Grouping.SHUFFLE)
            delivered = []
            original_deliver = runtime.deliver

            def spy(executor_id, event, sender_id):
                delivered.append((executor_id, event.payload["seq"]))
                original_deliver(executor_id, event, sender_id)

            runtime.deliver = spy
            events = [Event.data("up", payload={"seq": i}, created_at=0.0) for i in range(12)]
            if route_batched:
                runtime.router.route("up#0", "up", events)
            else:
                for event in events:
                    runtime.router.route("up#0", "up", [event])
            runtime.sim.run(until=5.0)
            return [entry for entry in delivered if entry[0].startswith("down#")]

        assert collect(True) == collect(False)
