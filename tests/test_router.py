"""Unit tests for event routing: groupings, FIFO channels and anchoring."""

from __future__ import annotations

import pytest

from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.event import Event
from repro.dataflow.grouping import Grouping

from tests.conftest import make_runtime


def grouping_dataflow(grouping: Grouping):
    builder = TopologyBuilder(f"grouping-{grouping.value}")
    builder.add_source("source", rate=20.0)
    builder.add_task("up", parallelism=1, latency_s=0.01)
    builder.add_task("down", parallelism=3, latency_s=0.01)
    builder.add_sink("sink")
    builder.connect("source", "up")
    builder.connect("up", "down", grouping=grouping)
    builder.connect("down", "sink")
    return builder.build()


def run_with_grouping(grouping: Grouping, until: float = 5.0):
    runtime = make_runtime(dataflow=grouping_dataflow(grouping), worker_vms=4)
    runtime.start()
    runtime.sim.run(until=until)
    return runtime


class TestGroupings:
    def test_shuffle_balances_across_instances(self):
        runtime = run_with_grouping(Grouping.SHUFFLE)
        counts = [runtime.executor(f"down#{i}").processed_count for i in range(3)]
        assert all(c > 0 for c in counts)
        assert max(counts) - min(counts) <= 1

    def test_all_grouping_duplicates_to_every_instance(self):
        runtime = run_with_grouping(Grouping.ALL)
        up_count = runtime.executor("up#0").processed_count
        counts = [runtime.executor(f"down#{i}").processed_count for i in range(3)]
        # Every instance sees (almost) every event emitted by the upstream task.
        for count in counts:
            assert count >= up_count - 3

    def test_global_grouping_uses_first_instance_only(self):
        runtime = run_with_grouping(Grouping.GLOBAL)
        assert runtime.executor("down#0").processed_count > 0
        assert runtime.executor("down#1").processed_count == 0
        assert runtime.executor("down#2").processed_count == 0

    def test_fields_grouping_is_deterministic_per_key(self):
        runtime = make_runtime(dataflow=grouping_dataflow(Grouping.FIELDS), worker_vms=4)
        router = runtime.router
        dataflow = runtime.dataflow
        edge = [e for e in dataflow.edges if e.grouping is Grouping.FIELDS][0]
        event = Event.data("up", payload={"key": "vehicle-17"})
        first = router._select_targets("up#0", edge, event)
        second = router._select_targets("up#0", edge, event.copy_for_edge())
        assert first == second


class TestDeliverySemantics:
    def test_per_channel_fifo_ordering(self):
        """Deliveries on the same (sender, receiver) channel never reorder."""
        runtime = make_runtime()
        runtime.start()
        delivered = []
        original_deliver = runtime.deliver

        def spy(executor_id, event, sender_id):
            if sender_id == "a#0" and event.is_data:
                delivered.append((executor_id, event.payload.get("seq")))
            original_deliver(executor_id, event, sender_id)

        runtime.deliver = spy
        runtime.router.runtime = runtime
        runtime.sim.run(until=5.0)
        for target in ("b#0", "b#1"):
            sequence = [seq for executor_id, seq in delivered if executor_id == target]
            assert sequence == sorted(sequence)

    def test_anchoring_only_when_acking_enabled(self):
        dcr_runtime = make_runtime(strategy="dcr")
        dcr_runtime.start()
        dcr_runtime.sim.run(until=2.0)
        assert dcr_runtime.acker.stats.anchors == 0

        dsm_runtime = make_runtime(strategy="dsm")
        dsm_runtime.start()
        dsm_runtime.sim.run(until=2.0)
        assert dsm_runtime.acker.stats.anchors > 0

    def test_routed_count_increases(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=2.0)
        assert runtime.router.routed_count > 0

    def test_send_direct_reaches_specific_executor(self):
        runtime = make_runtime()
        runtime.start()
        event = Event.data("source", payload={"direct": True}, created_at=runtime.sim.now)
        runtime.router.send_direct("source#0", "c#0", event)
        runtime.sim.run(until=1.0)
        assert runtime.executor("c#0").processed_count >= 1
