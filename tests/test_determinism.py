"""Run-to-run determinism of the fast-path engine.

Two guards for the overhaul's reproducibility promise:

* two full ``run_elastic_experiment()`` runs with the same seed produce
  *identical* event logs — this exercises the kernel fast path, the router
  caches/batching, the reused-event id stamping and the sorted rebalance
  kill order end to end;
* the FIELDS grouping uses a stable hash (CRC-32), so keyed routing does not
  depend on ``PYTHONHASHSEED`` (builtin ``hash()`` on strings is randomized
  per process, which silently made placements and figures irreproducible).
"""

from __future__ import annotations

import zlib

from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.event import Event, reset_event_ids
from repro.dataflow.grouping import Grouping
from repro.engine.router import _stable_field_index
from repro.experiments.elastic import run_elastic_experiment

from tests.conftest import make_runtime


def _log_records(log):
    """Every log record as a comparable tuple stream."""
    return (
        [(e.time, e.root_id, e.source, e.replay_count, e.from_backlog) for e in log.source_emits],
        [(r.time, r.root_id, r.event_id, r.sink, r.root_emitted_at, r.replay_count)
         for r in log.sink_receipts],
        [(d.time, d.executor_id, d.kind, d.reason, d.root_id) for d in log.drops],
        [(d.time, d.executor_id, d.root_id) for d in log.deferred],
        [(k.time, k.executor_id, k.queued_events_lost, k.pending_events_lost) for k in log.kills],
        [(l.time, l.executor_id, l.status) for l in log.lifecycle],
    )


def _run_once():
    reset_event_ids()
    result = run_elastic_experiment(
        dag="traffic", strategy="ccr", profile="surge", duration_s=300.0, seed=2018
    )
    return result


def test_same_seed_elastic_runs_are_identical():
    """Two same-seed elastic runs (with a migration) yield identical logs."""
    first = _run_once()
    second = _run_once()
    assert _log_records(first.log) == _log_records(second.log)
    assert first.log.summary() == second.log.summary()
    # The run must actually have exercised the interesting paths.
    assert first.runtime.rebalances, "expected the surge profile to trigger a migration"
    assert len(first.log.sink_receipts) > 1000


def test_fields_grouping_uses_stable_hash():
    """FIELDS routing is CRC-32 based, independent of PYTHONHASHSEED."""
    # Pinned expectation: changing the hash function silently re-keys every
    # grouped stream, so the exact mapping is part of the engine contract.
    assert _stable_field_index("vehicle-17", 3) == zlib.crc32(b"vehicle-17") % 3

    builder = TopologyBuilder("fields")
    builder.add_source("source", rate=10.0)
    builder.add_task("up", parallelism=1, latency_s=0.01)
    builder.add_task("down", parallelism=3, latency_s=0.01)
    builder.add_sink("sink")
    builder.connect("source", "up")
    builder.connect("up", "down", grouping=Grouping.FIELDS)
    builder.connect("down", "sink")
    runtime = make_runtime(dataflow=builder.build(), worker_vms=4)
    edge = [e for e in runtime.dataflow.edges if e.grouping is Grouping.FIELDS][0]

    for key in ("vehicle-1", "vehicle-2", "sensor-99", "x"):
        event = Event.data("up", payload={"key": key})
        expected = [f"down#{zlib.crc32(key.encode('utf-8')) % 3}"]
        assert runtime.router._select_targets("up#0", edge, event) == expected
        # The cached fast path in route() must agree with _select_targets.
        assert runtime.router._select_targets("up#0", edge, event.copy_for_edge()) == expected
