"""Unit tests for the topology builder."""

from __future__ import annotations

import pytest

from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.graph import DataflowValidationError
from repro.dataflow.grouping import Grouping


class TestDeclarations:
    def test_duplicate_task_rejected(self):
        builder = TopologyBuilder("t").add_task("a")
        with pytest.raises(DataflowValidationError):
            builder.add_task("a")

    def test_source_task_sink_round_trip(self):
        builder = TopologyBuilder("t")
        builder.add_source("src", rate=4.0)
        builder.add_task("a", parallelism=2, stateful=True)
        builder.add_sink("sink")
        builder.chain("src", "a", "sink")
        dataflow = builder.build()
        assert dataflow.task("src").rate == 4.0
        assert dataflow.task("a").parallelism == 2
        assert dataflow.task("a").stateful
        assert dataflow.task("sink").is_sink


class TestWiring:
    def test_connect_unknown_task_rejected(self):
        builder = TopologyBuilder("t").add_task("a")
        with pytest.raises(DataflowValidationError):
            builder.connect("a", "ghost")
        with pytest.raises(DataflowValidationError):
            builder.connect("ghost", "a")

    def test_self_loop_rejected(self):
        builder = TopologyBuilder("t").add_task("a")
        with pytest.raises(DataflowValidationError):
            builder.connect("a", "a")

    def test_duplicate_edge_rejected(self):
        builder = TopologyBuilder("t").add_task("a").add_task("b")
        builder.connect("a", "b")
        with pytest.raises(DataflowValidationError):
            builder.connect("a", "b")

    def test_chain_creates_consecutive_edges(self):
        builder = TopologyBuilder("t")
        builder.add_source("src")
        builder.add_task("a").add_task("b")
        builder.add_sink("sink")
        builder.chain("src", "a", "b", "sink")
        dataflow = builder.build()
        assert dataflow.successors("a") == ["b"]
        assert dataflow.successors("b") == ["sink"]

    def test_fan_out_and_fan_in(self):
        builder = TopologyBuilder("t")
        builder.add_source("src")
        for name in ("a", "b", "c", "merge"):
            builder.add_task(name)
        builder.add_sink("sink")
        builder.connect("src", "a")
        builder.fan_out("a", ["b", "c"])
        builder.fan_in(["b", "c"], "merge")
        builder.connect("merge", "sink")
        dataflow = builder.build()
        assert set(dataflow.successors("a")) == {"b", "c"}
        assert set(dataflow.predecessors("merge")) == {"b", "c"}

    def test_grouping_recorded_on_edge(self):
        builder = TopologyBuilder("t")
        builder.add_source("src")
        builder.add_task("a", parallelism=2)
        builder.add_sink("sink")
        builder.connect("src", "a", grouping=Grouping.FIELDS)
        builder.connect("a", "sink", grouping=Grouping.GLOBAL)
        dataflow = builder.build()
        assert dataflow.out_edges("src")[0].grouping is Grouping.FIELDS
        assert dataflow.out_edges("a")[0].grouping is Grouping.GLOBAL


class TestBuild:
    def test_auto_parallelism_applied_on_build(self):
        builder = TopologyBuilder("t")
        builder.add_source("src", rate=8.0)
        builder.add_task("a")
        builder.add_task("b")
        builder.add_task("merge")
        builder.add_sink("sink")
        builder.connect("src", "a")
        builder.connect("src", "b")
        builder.fan_in(["a", "b"], "merge")
        builder.connect("merge", "sink")
        dataflow = builder.build(auto_parallelism=True, events_per_instance=8.0)
        assert dataflow.task("merge").parallelism == 2

    def test_invalid_graph_raises_on_build(self):
        builder = TopologyBuilder("t")
        builder.add_source("src")
        builder.add_task("orphan")
        builder.add_sink("sink")
        builder.connect("src", "sink")
        builder.connect("orphan", "sink")
        with pytest.raises(DataflowValidationError):
            builder.build()
