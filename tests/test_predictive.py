"""The predictive, SLO-aware control plane: pipeline stages and end-to-end runs.

Covers the staged ``sense -> forecast -> plan -> place`` decision path:

* the SLO-breach override escalates an in-band plan only on a *sustained*
  breach with a *growing* backlog (a post-migration drain must not trigger);
* the sense stage's measured service rates close the heterogeneous-latency
  loop (a slow task is sized by what it actually does);
* an overloaded-but-in-band dataflow scales out on the latency trigger alone;
* the acceptance scenario: on the Grid 2x step surge, a predictive policy
  provisions *before* the surge lands and accrues measurably fewer
  SLO-violation seconds than the reactive baseline;
* incremental placement keeps unchanged task instances on their VMs and
  shrinks the forced-restart set (with a migration backlog window no larger
  than full replacement's);
* same-seed predictive runs are bit-identical.
"""

from __future__ import annotations

import pytest

from repro.dataflow import topologies
from repro.dataflow.builder import TopologyBuilder
from repro.elastic import (
    AllocationPlanner,
    ControllerConfig,
    ElasticityMonitor,
    MonitorSample,
    PlanStage,
    SenseReading,
)
from repro.elastic.policy import DemandForecast
from repro.experiments.elastic import run_elastic_experiment
from repro.experiments.predictive import run_predictive_experiment
from repro.workloads.profiles import StepProfile

from tests.conftest import fast_config, make_runtime
from tests.test_determinism import _log_records


def slow_chain(rate: float = 8.0, latency_s: float = 0.2):
    """A chain whose task is slower than the paper's assumed 8 ev/s.

    One instance serves only ``1 / latency_s`` = 5 ev/s, so the default
    1-per-8 sizing under-provisions: at 8 ev/s offered the input rate stays
    in band while the backlog (and sink latency) grows without bound -- the
    exact overload the SLO trigger exists for.
    """
    builder = TopologyBuilder("slowchain")
    builder.add_source("source", rate=rate)
    builder.add_task("work", parallelism=1, latency_s=latency_s, stateful=True)
    builder.add_sink("sink")
    builder.chain("source", "work", "sink")
    return builder.build()


def reading(
    time=0.0, offered=8.0, latency=None, queued=0, source_backlog=0, slo=2.0
) -> SenseReading:
    """A synthetic sense reading for plan-stage unit tests."""
    sample = MonitorSample(
        time=time,
        input_rate=offered,
        offered_rate=offered,
        output_rate=offered,
        avg_latency_s=latency,
        queue_backlog=queued,
        source_backlog=source_backlog,
        sources_paused=False,
    )
    breached = latency is not None and slo is not None and latency > slo
    return SenseReading(
        sample=sample,
        measured_capacities_ev_s={},
        slo_latency_s=slo,
        slo_breached=breached,
    )


def forecast_of(rate: float) -> DemandForecast:
    return DemandForecast(rate_ev_s=rate, horizon_s=60.0, observed_rate_ev_s=rate)


class TestSloOverride:
    """The plan stage's overload-aware escalation."""

    def make_stage(self) -> PlanStage:
        planner = AllocationPlanner(topologies.traffic())
        return PlanStage(planner, slo_confirm_samples=2, slo_headroom=1.5)

    def test_in_band_without_breach_stays_put(self):
        stage = self.make_stage()
        decision = stage.plan(reading(latency=0.5), forecast_of(8.0), "baseline")
        assert decision.target.tier == "baseline"
        assert not decision.slo_escalated

    def test_sustained_breach_with_growing_backlog_escalates(self):
        stage = self.make_stage()
        first = stage.plan(
            reading(time=15.0, latency=5.0, queued=100), forecast_of(8.0), "baseline"
        )
        assert not first.slo_escalated, "one breached sample must not trigger"
        second = stage.plan(
            reading(time=30.0, latency=6.0, queued=200), forecast_of(8.0), "baseline"
        )
        assert second.slo_escalated
        assert second.target.tier == "expanded"

    def test_plateaued_backlog_still_escalates(self):
        """A saturated deployment (backlog stuck high, latency breached) is
        overload, not a drain: the override must still fire."""
        stage = self.make_stage()
        stage.plan(reading(time=15.0, latency=5.0, queued=300), forecast_of(8.0), "baseline")
        decision = stage.plan(
            reading(time=30.0, latency=6.0, queued=300), forecast_of(8.0), "baseline"
        )
        assert decision.slo_escalated

    def test_draining_backlog_does_not_escalate(self):
        """High latency while the backlog shrinks is a recovery, not overload."""
        stage = self.make_stage()
        stage.plan(reading(time=15.0, latency=5.0, queued=300), forecast_of(8.0), "baseline")
        decision = stage.plan(
            reading(time=30.0, latency=6.0, queued=200), forecast_of(8.0), "baseline"
        )
        assert not decision.slo_escalated

    def test_recovery_resets_the_streak(self):
        stage = self.make_stage()
        stage.plan(reading(time=15.0, latency=5.0, queued=100), forecast_of(8.0), "baseline")
        stage.plan(reading(time=30.0, latency=0.5, queued=150), forecast_of(8.0), "baseline")
        decision = stage.plan(
            reading(time=45.0, latency=5.0, queued=200), forecast_of(8.0), "baseline"
        )
        assert not decision.slo_escalated, "the streak must restart after a clean sample"

    def test_out_of_band_plan_is_not_double_escalated(self):
        stage = self.make_stage()
        stage.plan(reading(time=15.0, latency=5.0, queued=100), forecast_of(24.0), "baseline")
        decision = stage.plan(
            reading(time=30.0, latency=6.0, queued=200), forecast_of(24.0), "baseline"
        )
        assert decision.target.tier == "expanded"
        assert not decision.slo_escalated, "the rate trigger already did the job"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(slo_latency_s=-1.0)
        with pytest.raises(ValueError):
            ControllerConfig(slo_headroom=1.0)
        with pytest.raises(ValueError):
            ControllerConfig(forecast_deadband=-0.1)
        planner = AllocationPlanner(topologies.traffic())
        with pytest.raises(ValueError):
            PlanStage(planner, slo_confirm_samples=0)


class TestMeasuredCapacities:
    """The sense stage's heterogeneous-latency feedback loop."""

    def test_monitor_measures_real_service_rate(self):
        runtime = make_runtime(slow_chain(rate=4.0, latency_s=0.2))
        runtime.start()
        runtime.sim.run(until=30.0)
        monitor = ElasticityMonitor(runtime, interval_s=10.0)
        measured = monitor.measured_capacities_ev_s()
        # 0.2 s service time -> 5 ev/s per busy instance, measured exactly.
        assert measured["work"] == pytest.approx(5.0, rel=0.01)

    def test_feedback_resizes_the_slow_task(self):
        """Fed the measured 5 ev/s, the planner demands 2 instances where the
        declared default (8 ev/s) claimed 1 was enough."""
        dataflow = slow_chain(rate=8.0, latency_s=0.2)
        planner = AllocationPlanner(dataflow)
        assert planner.required_instances_by_task(8.0)["work"] == 1
        planner.set_measured_capacities({"work": 5.0})
        assert planner.required_instances_by_task(8.0)["work"] == 2
        # Explicit operator-supplied capacities still win over measurements.
        explicit = AllocationPlanner(dataflow, task_capacities_ev_s={"work": 4.0})
        explicit.set_measured_capacities({"work": 100.0})
        assert explicit.required_instances_by_task(8.0)["work"] == 2

    def test_bogus_measurements_ignored(self):
        planner = AllocationPlanner(slow_chain())
        planner.set_measured_capacities({"work": -1.0, "no-such-task": 5.0})
        assert planner.measured_capacities_ev_s == {}


class TestSloViolationSeconds:
    def test_accounts_breached_intervals_and_outages(self):
        runtime = make_runtime(slow_chain(rate=4.0))
        monitor = ElasticityMonitor(runtime, interval_s=10.0)

        def sample(time, latency, output, queued):
            monitor.samples.append(MonitorSample(
                time=time, input_rate=4.0, offered_rate=4.0, output_rate=output,
                avg_latency_s=latency, queue_backlog=queued, source_backlog=0,
                sources_paused=False,
            ))

        sample(10.0, 0.5, 4.0, 0)    # healthy
        sample(20.0, 3.0, 4.0, 10)   # breached
        sample(30.0, None, 0.0, 50)  # outage: nothing flowing, backlog stuck
        sample(40.0, None, 0.0, 0)   # idle: nothing offered, nothing stuck
        sample(50.0, 1.9, 4.0, 0)    # healthy again
        assert monitor.slo_violation_seconds(2.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            monitor.slo_violation_seconds(0.0)


class TestSloEndToEnd:
    def test_in_band_overload_scales_out_on_latency_alone(self):
        """Offered rate never leaves the band, yet the dataflow is drowning
        (real service rate 5 ev/s < offered 8 ev/s): the latency trigger must
        fire and the escalated action must carry capacity."""
        result = run_elastic_experiment(
            strategy="ccr",
            profile="constant",
            duration_s=200.0,
            seed=9,
            dataflow=slow_chain(rate=8.0, latency_s=0.2),
            config=fast_config("ccr", seed=9),
            controller_config=ControllerConfig(
                check_interval_s=10.0, confirm_samples=1, cooldown_s=10.0,
                slo_latency_s=2.0, slo_confirm_samples=2,
            ),
            provisioning_latency_s=1.0,
            elastic_parallelism=True,
        )
        escalated = [a for a in result.actions if a.slo_escalated]
        assert escalated, "the sustained latency breach must trigger a scale-out"
        action = escalated[0]
        assert action.direction == "out"
        # The input rate alone would not have triggered: it stayed in band.
        assert action.observed_rate == pytest.approx(8.0, rel=0.1)
        assert action.target.rescale is not None, "the escalation must add capacity"

    def test_no_slo_configured_never_escalates(self):
        result = run_elastic_experiment(
            strategy="ccr",
            profile="constant",
            duration_s=120.0,
            seed=9,
            dataflow=slow_chain(rate=8.0, latency_s=0.2),
            config=fast_config("ccr", seed=9),
            controller_config=ControllerConfig(
                check_interval_s=10.0, confirm_samples=1, cooldown_s=10.0,
            ),
            provisioning_latency_s=1.0,
            elastic_parallelism=True,
        )
        assert all(not a.slo_escalated for a in result.actions)
        assert result.actions == [], "without the SLO trigger the overload goes unseen"


#: Tasks given 2x headroom: at a 2x surge they keep their instance count, so
#: an incremental placer can leave them running in place.
GRID_HEADROOM_CAPS = {
    "parse": 32.0, "anomaly_detect": 32.0, "alert_filter": 32.0,
    "alert_enrich": 32.0, "alert_notify": 32.0,
}


def _grid_surge_run(placement: str, duration_s: float = 300.0):
    config = ControllerConfig(
        check_interval_s=15.0, confirm_samples=2, cooldown_s=60.0, placement=placement,
    )
    dataflow = topologies.by_name("grid")
    base = sum(float(s.rate) for s in dataflow.sources)
    profile = StepProfile(steps=[(0.0, base), (120.0, base * 2), (360.0, base)])
    return run_elastic_experiment(
        dag="grid", strategy="ccr", profile=profile, duration_s=duration_s, seed=2018,
        dataflow=dataflow, controller_config=config, elastic_parallelism=True,
        task_capacities_ev_s=GRID_HEADROOM_CAPS,
    )


class TestIncrementalPlacement:
    """Acceptance: the incremental placer shrinks the forced-restart set."""

    @pytest.fixture(scope="class")
    def runs(self):
        return {p: _grid_surge_run(p) for p in ("full-replace", "incremental")}

    def test_unchanged_instances_keep_their_vms(self, runs):
        result = runs["incremental"]
        action = result.actions[0]
        assert action.direction == "out"
        assert action.kept_vm_ids, "a grow must retain the current fleet"
        rebalance = result.runtime.rebalances[0]
        staying_user = {
            e for e in rebalance.staying
            if not e.startswith("source") and not e.startswith("sink")
        }
        expected = {f"{name}#0" for name in GRID_HEADROOM_CAPS}
        assert expected <= staying_user, (
            "instances of tasks whose parallelism did not change must stay put"
        )
        # And they genuinely kept their slots on retained VMs.
        for executor_id in expected:
            vm = result.runtime.executor(executor_id).vm_id
            assert vm in action.kept_vm_ids

    def test_forced_restart_set_shrinks(self, runs):
        full = runs["full-replace"].runtime.rebalances[0]
        incremental = runs["incremental"].runtime.rebalances[0]
        assert len(incremental.migrating) < len(full.migrating)
        assert len(incremental.staying) > len(full.staying)

    def test_only_the_delta_is_provisioned(self, runs):
        full_action = runs["full-replace"].actions[0]
        incremental_action = runs["incremental"].actions[0]
        assert len(incremental_action.provisioned_vm_ids) < len(full_action.provisioned_vm_ids)
        assert incremental_action.kept_vm_ids
        assert full_action.kept_vm_ids == []

    def test_backlog_window_no_larger_than_full_replace(self, runs):
        def peak_after_decision(result):
            start = result.actions[0].decided_at
            return max(
                s.queue_backlog + s.source_backlog
                for s in result.samples if s.time >= start
            )

        assert peak_after_decision(runs["incremental"]) <= peak_after_decision(
            runs["full-replace"]
        )


class TestPredictiveAcceptance:
    """Acceptance: a predictive policy beats reactive on the Grid 2x surge."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return run_predictive_experiment(
            dag="grid", strategy="ccr", profile="surge",
            policies=("reactive", "lookahead"), duration_s=600.0, seed=2018,
        )

    def test_predictive_provisions_before_the_surge_lands(self, comparison):
        lookahead = comparison.runs["lookahead"]
        assert lookahead.provision_lead_s is not None
        assert lookahead.provision_lead_s > 0, (
            "the lookahead policy must decide its scale-out before the surge"
        )
        reactive = comparison.runs["reactive"]
        assert reactive.provision_lead_s is not None and reactive.provision_lead_s < 0, (
            "the reactive baseline can only react after the surge"
        )

    def test_predictive_has_measurably_fewer_slo_violation_seconds(self, comparison):
        saved = comparison.violation_improvement_s("lookahead")
        assert saved is not None
        # Measurable: at least two whole control intervals of violation saved.
        assert saved >= 30.0, (
            f"lookahead saved only {saved}s of SLO violations vs reactive"
        )
        best = comparison.best_predictive()
        assert best is not None and best.policy == "lookahead"

    def test_headline_json_shape(self, comparison, tmp_path):
        path = comparison.write_headline_json(tmp_path / "BENCH_predictive.json")
        import json

        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-bench-predictive/1"
        benchmarks = payload["benchmarks"]
        assert set(benchmarks) == {
            "predict_reactive_slo_violation_s", "predict_lookahead_slo_violation_s",
        }
        for stats in benchmarks.values():
            assert stats["mean_s"] >= 0.0


class TestPredictiveDeterminism:
    def test_same_seed_predictive_runs_are_identical(self):
        def run_once():
            return run_elastic_experiment(
                dag="traffic", strategy="ccr", profile="surge", duration_s=300.0,
                seed=2018,
                controller_config=ControllerConfig(
                    check_interval_s=15.0, confirm_samples=2, cooldown_s=60.0,
                    forecast_policy="ewma", slo_latency_s=30.0,
                    placement="incremental",
                ),
                elastic_parallelism=True,
            )

        first = run_once()
        second = run_once()
        assert _log_records(first.log) == _log_records(second.log)
        assert [a.decided_at for a in first.actions] == [a.decided_at for a in second.actions]


class TestPredictCLI:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["predict"])
        assert args.command == "predict"
        assert args.dag == "grid"
        assert args.profile == "surge"
        assert args.slo == 30.0
        assert args.placement == "incremental"
        assert "reactive" in args.policies and "lookahead" in args.policies

    def test_unknown_policy_rejected(self, capsys):
        from repro.cli import main

        exit_code = main(["predict", "--policies", "crystal-ball"])
        assert exit_code == 2
        assert "unknown forecast policy" in capsys.readouterr().err

    def test_predict_command_runs_end_to_end(self, capsys, tmp_path):
        from repro.cli import main

        json_path = tmp_path / "predictive.json"
        exit_code = main([
            "predict", "--dag", "grid", "--duration", "420",
            "--policies", "reactive,lookahead", "--json", str(json_path),
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Forecast policies" in output
        assert "reactive" in output and "lookahead" in output
        assert json_path.exists()
