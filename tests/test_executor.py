"""Unit tests for executor processing, platform (checkpoint) logic and lifecycle.

These use a real deployed :class:`TopologyRuntime` on the tiny test dataflow so
that routing, acking and the checkpoint coordinator behave exactly as in the
full experiments.
"""

from __future__ import annotations

import pytest

from repro.dataflow.event import CheckpointAction, Event
from repro.engine.executor import CHECKPOINT_SOURCE_ID, ExecutorStatus
from repro.reliability.checkpoint import WaveMode

from tests.conftest import fanout_dataflow, make_runtime, tiny_dataflow


def started_runtime(dataflow=None, strategy="dcr", seed=7):
    runtime = make_runtime(dataflow=dataflow, strategy=strategy, seed=seed)
    runtime.start()
    return runtime


class TestDataProcessing:
    def test_events_flow_source_to_sink(self):
        runtime = started_runtime()
        runtime.sim.run(until=5.0)
        sink = runtime.sink_executors[0]
        assert sink.received_count > 0
        assert len(runtime.log.sink_receipts) == sink.received_count

    def test_processing_respects_task_latency(self):
        runtime = started_runtime()
        runtime.sim.run(until=5.0)
        # End-to-end latency must be at least the sum of the three task latencies.
        latencies = [r.latency_s for r in runtime.log.sink_receipts]
        assert min(latencies) >= 0.06

    def test_state_counts_processed_events(self):
        runtime = started_runtime()
        runtime.sim.run(until=5.0)
        executor = runtime.executor("a#0")
        assert executor.state.get("processed", 0) == executor.processed_count
        assert executor.processed_count > 0

    def test_shuffle_splits_load_between_instances(self):
        runtime = started_runtime()
        runtime.sim.run(until=10.0)
        b0 = runtime.executor("b#0").processed_count
        b1 = runtime.executor("b#1").processed_count
        assert b0 > 0 and b1 > 0
        assert abs(b0 - b1) <= 1

    def test_queue_drains_when_idle(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        runtime.sim.run(until=4.0)
        assert runtime.queue_backlog() == 0


class TestDelivery:
    def test_delivery_to_killed_executor_is_dropped(self):
        runtime = started_runtime()
        runtime.sim.run(until=1.0)
        executor = runtime.executor("b#0")
        executor.kill()
        event = Event.data("a", payload={"x": 1}, created_at=runtime.sim.now)
        accepted = executor.deliver(event, "a#0")
        assert not accepted

    def test_kill_reports_lost_queued_events(self):
        runtime = started_runtime()
        executor = runtime.executor("c#0")
        for i in range(4):
            executor.input_queue.append((Event.data("b", payload=i), "b#0"))
        queued_lost, _ = executor.kill()
        assert queued_lost == 4
        assert runtime.log.kills[-1].queued_events_lost == 4
        assert len(executor.input_queue) == 0

    def test_become_ready_resets_state_and_requires_init(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        executor = runtime.executor("a#0")
        assert executor.state.get("processed", 0) > 0
        executor.kill()
        executor.become_ready()
        assert executor.status is ExecutorStatus.RUNNING
        assert not executor.initialized
        assert executor.state.get("processed", 0) == 0

    def test_uninitialized_executor_buffers_data_events(self):
        runtime = started_runtime()
        executor = runtime.executor("a#0")
        executor.kill()
        executor.become_ready()
        event = Event.data("source", payload={"x": 1}, created_at=runtime.sim.now)
        accepted = executor.deliver(event, "source#0")
        assert accepted
        assert len(executor.pre_init_buffer) == 1
        assert len(executor.input_queue) == 0


class TestPrepareAndCommit:
    def test_sequential_prepare_wave_reaches_all_tasks(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        done = []
        runtime.checkpoints.start_wave(CheckpointAction.PREPARE, mode=WaveMode.SEQUENTIAL, on_complete=done.append)
        runtime.sim.run(until=4.0)
        assert len(done) == 1
        assert done[0].acked == runtime.user_executor_id_set()

    def test_commit_persists_state_to_store(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        finished = []
        runtime.checkpoints.run_checkpoint(on_complete=finished.append)
        runtime.sim.run(until=5.0)
        assert finished
        for executor in runtime.user_executors:
            key = f"ckpt/{runtime.dataflow.name}/{executor.executor_id}"
            assert runtime.statestore.contains(key)

    def test_committed_state_matches_prepared_snapshot(self):
        runtime = started_runtime()
        runtime.sim.run(until=3.0)
        runtime.pause_sources()
        runtime.sim.run(until=3.5)
        executor = runtime.executor("a#0")
        processed_at_prepare = executor.state.get("processed", 0)
        finished = []
        runtime.checkpoints.run_checkpoint(on_complete=finished.append)
        runtime.sim.run(until=6.0)
        stored = runtime.statestore.peek(f"ckpt/{runtime.dataflow.name}/a#0")
        assert stored["state"].get("processed", 0) == processed_at_prepare

    def test_broadcast_prepare_enables_capture_mode(self):
        runtime = started_runtime(strategy="ccr")
        runtime.sim.run(until=2.0)
        runtime.checkpoints.start_wave(CheckpointAction.PREPARE, mode=WaveMode.BROADCAST)
        runtime.sim.run(until=2.2)
        assert all(e.capture_mode for e in runtime.user_executors)

    def test_capture_mode_holds_events_without_processing(self):
        runtime = started_runtime(strategy="ccr")
        runtime.sim.run(until=2.0)
        runtime.checkpoints.start_wave(CheckpointAction.PREPARE, mode=WaveMode.BROADCAST)
        runtime.sim.run(until=2.1)
        executor = runtime.executor("a#0")
        processed_before = executor.processed_count
        # Let the (unpaused) source keep emitting into the captured dataflow.
        runtime.sim.run(until=3.0)
        assert executor.processed_count == processed_before
        assert executor.captured_count > 0
        assert len(executor.pending_events) == executor.captured_count

    def test_rollback_clears_capture_mode(self):
        runtime = started_runtime(strategy="ccr")
        runtime.sim.run(until=1.0)
        cid = runtime.checkpoints.new_checkpoint_id()
        runtime.checkpoints.start_wave(CheckpointAction.PREPARE, cid, WaveMode.BROADCAST)
        runtime.sim.run(until=1.2)
        assert runtime.executor("a#0").capture_mode
        runtime.checkpoints.start_wave(CheckpointAction.ROLLBACK, cid, WaveMode.BROADCAST)
        runtime.sim.run(until=1.4)
        assert not runtime.executor("a#0").capture_mode


class TestBarrierAlignment:
    def test_merge_task_waits_for_all_upstream_instances(self):
        runtime = started_runtime(dataflow=fanout_dataflow())
        runtime.sim.run(until=2.0)
        merge = runtime.executor("merge#0")
        expected = runtime.expected_control_senders(merge)
        # merge has two upstream tasks: left (2 instances) and right (1 instance).
        assert expected == {"left#0", "left#1", "right#0"}

    def test_entry_task_expects_checkpoint_source(self):
        runtime = started_runtime(dataflow=fanout_dataflow())
        split = runtime.executor("split#0")
        assert runtime.expected_control_senders(split) == {CHECKPOINT_SOURCE_ID}

    def test_sequential_wave_completes_on_fanout_dataflow(self):
        runtime = started_runtime(dataflow=fanout_dataflow())
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        done = []
        runtime.checkpoints.start_wave(CheckpointAction.PREPARE, mode=WaveMode.SEQUENTIAL, on_complete=done.append)
        runtime.sim.run(until=4.0)
        assert len(done) == 1


class TestInit:
    def test_init_restores_committed_state_after_restart(self):
        runtime = started_runtime()
        runtime.sim.run(until=3.0)
        runtime.pause_sources()
        finished = []
        cid = runtime.checkpoints.run_checkpoint(on_complete=finished.append)
        runtime.sim.run(until=5.0)
        assert finished
        executor = runtime.executor("a#0")
        committed = runtime.statestore.peek(f"ckpt/{runtime.dataflow.name}/a#0")["state"]["processed"]
        executor.kill()
        executor.become_ready()
        assert executor.state.get("processed", 0) == 0
        runtime.checkpoints.start_wave(CheckpointAction.INIT, cid, WaveMode.BROADCAST)
        runtime.sim.run(until=6.0)
        assert executor.initialized
        assert executor.state.get("processed") == committed

    def test_duplicate_init_is_ignored_but_acked(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        cid = runtime.checkpoints.run_checkpoint()
        runtime.sim.run(until=4.0)
        executor = runtime.executor("a#0")
        wave = runtime.checkpoints.start_wave(CheckpointAction.INIT, cid, WaveMode.BROADCAST, resend_interval_s=0.2)
        runtime.sim.run(until=6.0)
        assert executor.restored_count == 1
        assert wave.status.value == "complete"

    def test_init_flushes_pre_init_buffer_into_queue(self):
        runtime = started_runtime()
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        cid = runtime.checkpoints.run_checkpoint()
        runtime.sim.run(until=4.0)
        executor = runtime.executor("a#0")
        executor.kill()
        executor.become_ready()
        for i in range(3):
            executor.deliver(Event.data("source", payload=i, created_at=runtime.sim.now), "source#0")
        assert len(executor.pre_init_buffer) == 3
        runtime.checkpoints.start_wave(CheckpointAction.INIT, cid, WaveMode.BROADCAST)
        runtime.sim.run(until=6.0)
        assert len(executor.pre_init_buffer) == 0
        assert executor.processed_count >= 3


class TestSinkBatchService:
    """Coalesced sink service: fewer kernel events, identical receipts."""

    @staticmethod
    def runtime_with_batching(batch_max, strategy="dcr", sinks=1):
        from repro.dataflow.builder import TopologyBuilder

        builder = TopologyBuilder("batchchain")
        builder.add_source("source", rate=4.0)
        builder.add_task("work", parallelism=1, latency_s=0.005)
        for i in range(sinks):
            name = "sink" if sinks == 1 else f"sink{i}"
            builder.add_sink(name)
            builder.connect("work", name)
        builder.connect("source", "work")
        runtime = make_runtime(builder.build(), strategy=strategy)
        runtime.config.sink_batch_max = batch_max
        return runtime

    def flood_and_drain(self, batch_max, events=500, strategy="dcr"):
        from repro.dataflow.event import reset_event_ids

        reset_event_ids()
        runtime = self.runtime_with_batching(batch_max, strategy=strategy)
        for executor in runtime.executors.values():
            if executor.task.name != "source":
                executor.start()
        for i in range(events):
            event = Event.data("work", payload={"seq": i}, created_at=0.0)
            runtime.deliver("sink#0", event, "work#0")
        runtime.sim.run()
        return runtime

    def test_batched_drain_matches_unbatched_receipts_exactly(self):
        batched = self.flood_and_drain(batch_max=32)
        serial = self.flood_and_drain(batch_max=0)

        def records(runtime):
            return [
                (r.time, r.root_id, r.event_id, r.sink)
                for r in runtime.log.sink_receipts
            ]

        assert records(batched) == records(serial)
        assert len(batched.log.sink_receipts) == 500
        # Receipt times stay non-decreasing (the indexed log bisects them).
        times = batched.log.receipt_times
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_batching_reduces_kernel_events(self):
        batched = self.flood_and_drain(batch_max=32)
        serial = self.flood_and_drain(batch_max=0)
        assert batched.sim.processed_events < serial.sim.processed_events

    def test_batching_disabled_under_acking(self):
        runtime = self.runtime_with_batching(batch_max=32, strategy="dsm")
        for executor in runtime.executors.values():
            executor.start()
        sink = runtime.executor("sink#0")
        assert not sink._batch_enabled

    def test_batching_disabled_with_multiple_sinks(self):
        runtime = self.runtime_with_batching(batch_max=32, sinks=2)
        for executor in runtime.executors.values():
            executor.start()
        assert not runtime.executor("sink0#0")._batch_enabled
        assert not runtime.executor("sink1#0")._batch_enabled

    def test_full_run_is_equivalent_with_and_without_batching(self):
        """End to end: a live source feeding a sink through a surge of
        deliveries produces identical logs either way."""

        def run(batch_max):
            from repro.dataflow.event import reset_event_ids

            reset_event_ids()
            runtime = self.runtime_with_batching(batch_max)
            runtime.start()
            runtime.sim.run(until=30.0)
            return [
                (r.time, r.root_id, r.event_id) for r in runtime.log.sink_receipts
            ]

        assert run(32) == run(0)
