"""Unit tests for task definitions."""

from __future__ import annotations

import pytest

from repro.dataflow.task import SinkTask, SourceTask, Task, TaskKind, default_logic


class TestTaskValidation:
    def test_defaults(self):
        task = Task(name="t")
        assert task.kind is TaskKind.PROCESS
        assert task.parallelism == 1
        assert task.latency_s == pytest.approx(0.1)
        assert task.selectivity == 1.0
        assert not task.stateful

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Task(name="")

    def test_zero_parallelism_rejected(self):
        with pytest.raises(ValueError):
            Task(name="t", parallelism=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Task(name="t", latency_s=-0.1)

    def test_negative_selectivity_rejected(self):
        with pytest.raises(ValueError):
            Task(name="t", selectivity=-1.0)

    def test_instance_ids(self):
        task = Task(name="t", parallelism=3)
        assert task.instance_ids() == ["t#0", "t#1", "t#2"]


class TestDefaultLogic:
    def test_one_to_one_selectivity(self):
        logic = default_logic(1.0)
        state = {}
        assert logic("payload", state) == ["payload"]
        assert state["processed"] == 1

    def test_one_to_many_selectivity(self):
        logic = default_logic(3.0)
        assert logic("x", {}) == ["x", "x", "x"]

    def test_zero_selectivity_emits_nothing(self):
        logic = default_logic(0.0)
        assert logic("x", {}) == []

    def test_state_counter_accumulates(self):
        logic = default_logic(1.0)
        state = {}
        for _ in range(5):
            logic("x", state)
        assert state["processed"] == 5

    def test_custom_logic_used_when_provided(self):
        def double(payload, state):
            return [payload * 2]

        task = Task(name="t", logic=double)
        assert task.logic(3, {}) == [6]


class TestSourceAndSink:
    def test_source_kind_and_rate(self):
        source = SourceTask(name="src", rate=8.0)
        assert source.kind is TaskKind.SOURCE
        assert source.is_source
        assert source.rate == 8.0
        assert source.latency_s == 0.0

    def test_source_requires_positive_rate(self):
        with pytest.raises(ValueError):
            SourceTask(name="src", rate=0.0)

    def test_sink_kind(self):
        sink = SinkTask(name="sink")
        assert sink.kind is TaskKind.SINK
        assert sink.is_sink
        assert sink.selectivity == 0.0

    def test_source_payload_factory_stored(self):
        factory = lambda seq: {"n": seq}
        source = SourceTask(name="src", rate=4.0, payload_factory=factory)
        assert source.payload_factory(3) == {"n": 3}
