"""The closed elasticity loop: planner, monitor, controller, end-to-end runs.

The acceptance scenario mirrors the paper's motivation: the Traffic dataflow
under a rush-hour :class:`StepProfile` surge must scale out and back in
*automatically* (no manual ``migrate_at``), with every strategy (DSM, DCR,
CCR), and the vacated VMs must stop billing.
"""

from __future__ import annotations

import pytest

from repro.cluster.vm import D1, D2, D3
from repro.dataflow import topologies
from repro.dataflow.builder import TopologyBuilder
from repro.elastic import (
    AllocationPlanner,
    ControllerConfig,
    ElasticityMonitor,
)
from repro.experiments.elastic import run_elastic_experiment
from repro.workloads import BurstProfile, StepProfile

from tests.conftest import fast_config, make_runtime


def small_chain(parallelism: int = 1, rate: float = 8.0):
    """A fast source->work->sink chain for controller unit tests.

    With one instance and the paper's 8 ev/s the chain sits exactly at
    pressure 1.0 (baseline tier), like the paper dataflows do.
    """
    builder = TopologyBuilder("chain")
    builder.add_source("source", rate=rate)
    builder.add_task("work", parallelism=parallelism, latency_s=0.005, stateful=True)
    builder.add_sink("sink")
    builder.chain("source", "work", "sink")
    return builder.build()


class TestAllocationPlanner:
    def test_baseline_rate_stays_on_d2(self):
        dataflow = topologies.traffic()
        planner = AllocationPlanner(dataflow)
        target = planner.plan(8.0)
        assert target.tier == "baseline"
        assert target.pressure == pytest.approx(1.0)
        assert target.vm_counts == {D2.name: 7}  # Table 1: 13 slots -> 7 D2s

    def test_surge_rate_expands_to_one_slot_d1s(self):
        dataflow = topologies.traffic()
        planner = AllocationPlanner(dataflow)
        target = planner.plan(24.0)
        assert target.tier == "expanded"
        assert target.pressure > 1.2
        assert target.vm_counts == {D1.name: 13}

    def test_low_rate_consolidates_onto_d3s(self):
        dataflow = topologies.traffic()
        planner = AllocationPlanner(dataflow)
        target = planner.plan(4.0)
        assert target.tier == "consolidated"
        assert target.vm_counts == {D3.name: 4}  # ceil(13 / 4)

    def test_required_instances_floors_at_one_per_task(self):
        dataflow = topologies.traffic()
        planner = AllocationPlanner(dataflow)
        assert planner.required_instances(0.01) == len(dataflow.user_tasks)

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            AllocationPlanner(topologies.linear(), expand_pressure=0.8, consolidate_pressure=0.9)


class TestElasticityMonitor:
    def test_samples_measure_rates_incrementally(self):
        runtime = make_runtime(small_chain(rate=10.0))
        runtime.start()
        monitor = ElasticityMonitor(runtime, interval_s=5.0)
        runtime.sim.run(until=5.0)
        first = monitor.sample_now()
        runtime.sim.run(until=10.0)
        second = monitor.sample_now()
        assert first.input_rate == pytest.approx(10.0, rel=0.1)
        assert second.input_rate == pytest.approx(10.0, rel=0.1)
        assert second.output_rate > 0
        assert second.avg_latency_s is not None and second.avg_latency_s < 1.0
        # Incremental reads: the two samples together cover all emissions.
        total = (first.input_rate + second.input_rate) * 5.0
        assert total == pytest.approx(len(runtime.log.source_emits), abs=2)

    def test_paused_sources_are_flagged(self):
        runtime = make_runtime(small_chain())
        runtime.start()
        monitor = ElasticityMonitor(runtime, interval_s=5.0)
        runtime.sim.run(until=5.0)
        runtime.pause_sources()
        runtime.sim.run(until=10.0)
        sample = monitor.sample_now()
        assert sample.sources_paused
        assert sample.source_backlog > 0


class TestControllerHysteresis:
    """Short bursts must not flap the allocation when hysteresis is on."""

    BURST = dict(base_rate=8.0, burst_multiplier=3.0, burst_period_s=60.0, burst_duration_s=15.0)

    def run_with(self, confirm_samples: int):
        return run_elastic_experiment(
            strategy="ccr",
            profile=BurstProfile(**self.BURST),
            duration_s=150.0,
            seed=3,
            dataflow=small_chain(),
            config=fast_config("ccr", seed=3),
            controller_config=ControllerConfig(
                check_interval_s=10.0, confirm_samples=confirm_samples, cooldown_s=5.0
            ),
            provisioning_latency_s=1.0,
        )

    def test_no_flapping_with_hysteresis(self):
        result = self.run_with(confirm_samples=3)
        assert result.actions == []

    def test_trigger_happy_controller_does_flap(self):
        # The same bursts with no hysteresis cause repeated out/in migrations,
        # demonstrating that confirm_samples is what prevents the flapping.
        result = self.run_with(confirm_samples=1)
        directions = [a.direction for a in result.actions]
        assert "out" in directions and "in" in directions
        assert len(result.actions) >= 2


class TestElasticEndToEnd:
    """Acceptance: Traffic DAG + StepProfile surge -> automatic out then in."""

    @pytest.mark.parametrize("strategy", ["dsm", "dcr", "ccr"])
    def test_surge_scales_out_then_in_and_releases_vms(self, strategy):
        profile = StepProfile(steps=[(0.0, 8.0), (60.0, 24.0), (140.0, 8.0)])
        result = run_elastic_experiment(
            dag="traffic",
            strategy=strategy,
            profile=profile,
            duration_s=220.0,
            seed=11,
            dataflow=topologies.traffic(latency_s=0.02),
            config=fast_config(strategy, seed=11),
            controller_config=ControllerConfig(
                check_interval_s=5.0, confirm_samples=2, cooldown_s=30.0
            ),
            provisioning_latency_s=2.0,
        )

        outs, ins = result.scale_outs(), result.scale_ins()
        assert len(outs) >= 1, "the surge must trigger a scale-out"
        assert len(ins) >= 1, "the surge's end must trigger a scale-in"
        assert all(a.is_complete for a in result.actions)

        # Incremental placement (the default) grows in place: the surge tier
        # fits on the initial D2 fleet's spare slots, so the scale-out keeps
        # the fleet and provisions nothing (full-replace would have re-fleeted
        # onto a fresh D1-per-slot allocation here).
        first_out = outs[0]
        assert first_out.provisioned_vm_ids == []
        assert first_out.deprovisioned_vm_ids == []

        # The consolidating scale-in re-fleets (a private fleet has no shared
        # free slots to absorb into): a fresh baseline-sized D2 fleet replaces
        # the original one, whose billing is finalized.
        assert set(ins[-1].deprovisioned_vm_ids) == set(result.initial_vm_ids)
        finalized = {
            r.vm_id for r in result.provider.billing_records if r.deprovisioned_at is not None
        }
        assert set(result.initial_vm_ids) <= finalized
        final_fleet = result.runtime.cluster.describe()
        assert "D1" not in final_fleet
        assert final_fleet[D2.name] == 7

        # The dataflow kept flowing after the last migration completed.
        last_done = result.actions[-1].completed_at
        assert len(result.log.receipts_after(last_done + 10.0)) > 0


class TestMultiSourceProfiles:
    """Preset profiles scale per source; a single profile instance would not."""

    @staticmethod
    def two_source_dataflow():
        builder = TopologyBuilder("twosrc")
        builder.add_source("src_a", rate=8.0)
        builder.add_source("src_b", rate=8.0)
        builder.add_task("merge", parallelism=2, latency_s=0.005, stateful=True)
        builder.add_sink("sink")
        builder.fan_in(["src_a", "src_b"], "merge")
        builder.connect("merge", "sink")
        return builder.build()

    def test_constant_preset_is_steady_state_for_two_sources(self):
        # Regression: the total-rate profile used to be attached to *each*
        # source, doubling the offered load and triggering a spurious scale-out.
        result = run_elastic_experiment(
            strategy="ccr",
            profile="constant",
            duration_s=60.0,
            seed=5,
            dataflow=self.two_source_dataflow(),
            config=fast_config("ccr", seed=5),
            controller_config=ControllerConfig(
                check_interval_s=5.0, confirm_samples=1, cooldown_s=5.0
            ),
            provisioning_latency_s=1.0,
        )
        assert result.actions == []
        assert result.monitor.latest.input_rate == pytest.approx(16.0, rel=0.1)

    def test_profile_instance_rejected_for_multi_source(self):
        with pytest.raises(ValueError, match="multi-source"):
            run_elastic_experiment(
                profile=StepProfile(steps=[(0.0, 8.0)]),
                duration_s=30.0,
                dataflow=self.two_source_dataflow(),
                config=fast_config("ccr"),
            )


class TestElasticCLI:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["elastic"])
        assert args.command == "elastic"
        assert args.dag == "traffic"
        assert args.strategy == "ccr"
        assert args.profile == "surge"
        assert args.confirm_samples == 2

    def test_unknown_profile_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["elastic", "--profile", "tsunami"])

    def test_elastic_command_runs_end_to_end(self, capsys):
        from repro.cli import main

        exit_code = main([
            "elastic", "--dag", "linear", "--strategy", "ccr", "--profile", "surge",
            "--duration", "300", "--check-interval", "10", "--cooldown", "30", "--seed", "7",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Scaling actions" in output
        assert "scale-out" in output
        assert "total:" in output


class TestOfferedRate:
    """The drain-corrected load signal scaling decisions plan on."""

    def test_offered_rate_tracks_generation_through_pause_and_drain(self):
        runtime = make_runtime(small_chain(rate=10.0))
        runtime.start()
        monitor = ElasticityMonitor(runtime, interval_s=10.0)

        runtime.sim.run(until=10.0)
        steady = monitor.sample_now()
        assert steady.offered_rate == pytest.approx(steady.input_rate, rel=0.05)

        # Paused: nothing is emitted, but the load is still being offered.
        runtime.pause_sources()
        runtime.sim.run(until=20.0)
        paused = monitor.sample_now()
        assert paused.input_rate == 0.0
        assert paused.offered_rate == pytest.approx(10.0, rel=0.15)

        # Draining: the wire carries the backlog burst on top of fresh load,
        # but the offered rate stays the generation rate.
        runtime.unpause_sources()
        runtime.sim.run(until=30.0)
        draining = monitor.sample_now()
        assert draining.input_rate > 15.0
        assert draining.offered_rate == pytest.approx(10.0, rel=0.15)

    def test_drain_burst_does_not_trigger_spurious_scale_out(self):
        """A pause builds a backlog whose drain burst used to read as a
        surge; planning on the offered rate keeps the controller quiet."""
        from repro.cluster.cloud import CloudProvider
        from repro.elastic import AllocationPlanner, ElasticityController
        from repro.core.strategy import strategy_by_name

        runtime = make_runtime(small_chain(rate=8.0))
        runtime.start()
        provider = CloudProvider(runtime.sim, provisioning_latency_s=1.0)
        monitor = ElasticityMonitor(runtime, interval_s=5.0)
        controller = ElasticityController(
            runtime, provider, monitor, AllocationPlanner(runtime.dataflow),
            strategy_by_name("ccr"),
            config=ControllerConfig(check_interval_s=5.0, confirm_samples=1, cooldown_s=5.0),
        )
        controller.start()
        runtime.sim.schedule(12.0, runtime.pause_sources)
        runtime.sim.schedule(27.0, runtime.unpause_sources)
        runtime.sim.run(until=90.0)
        controller.stop()
        runtime.stop_sources()

        # The drain burst after t=27 pushed the *wire* rate well above the
        # expand threshold in at least one sample, yet no scale-out happened.
        assert any(s.input_rate > 12.0 for s in monitor.samples if not s.sources_paused)
        assert [a for a in controller.actions if a.direction == "out"] == []


class TestDrainAwareScaleInGuard:
    def test_guard_config_validated(self):
        with pytest.raises(ValueError):
            ControllerConfig(drain_guard_backlog_s=-1.0)

    def test_scale_in_held_until_backlog_absorbed(self):
        """After a surge ends, the consolidation must wait for the drain:
        with the guard on, every scale-in lands only once the backlog is
        below the guard threshold."""
        profile = StepProfile(steps=[(0.0, 8.0), (30.0, 24.0), (80.0, 8.0)])
        result = run_elastic_experiment(
            dag="traffic",
            strategy="ccr",
            profile=profile,
            duration_s=260.0,
            seed=11,
            dataflow=topologies.traffic(latency_s=0.02),
            config=fast_config("ccr", seed=11),
            controller_config=ControllerConfig(
                check_interval_s=5.0, confirm_samples=2, cooldown_s=10.0,
                drain_guard_backlog_s=5.0,
            ),
            provisioning_latency_s=2.0,
        )
        ins = result.scale_ins()
        assert ins, "the surge's end must eventually consolidate"
        guard = 5.0
        for action in ins:
            decided = action.decided_at
            sample = max(
                (s for s in result.samples if s.time <= decided),
                key=lambda s: s.time,
            )
            backlog = sample.queue_backlog + sample.source_backlog
            assert backlog <= guard * max(sample.offered_rate, 1.0), (
                f"scale-in at t={decided} enacted with {backlog} backlogged events"
            )

    def test_guard_disabled_consolidates_mid_drain(self):
        """Regression guard for the guard: with drain_guard_backlog_s=None the
        old behaviour (consolidating while a backlog drains) is reachable,
        proving the guard is what prevents it."""
        controller_kwargs = dict(
            check_interval_s=5.0, confirm_samples=1, cooldown_s=5.0,
        )
        profile = StepProfile(steps=[(0.0, 8.0), (20.0, 32.0), (60.0, 8.0)])

        def run(guard):
            return run_elastic_experiment(
                strategy="dcr",
                profile=profile,
                duration_s=150.0,
                seed=17,
                dataflow=small_chain(rate=8.0),
                config=fast_config("dcr", seed=17),
                controller_config=ControllerConfig(
                    drain_guard_backlog_s=guard, **controller_kwargs
                ),
                provisioning_latency_s=1.0,
            )

        unguarded = run(None)
        guarded = run(5.0)

        def earliest_in(result):
            ins = result.scale_ins()
            return min((a.decided_at for a in ins), default=None)

        unguarded_at = earliest_in(unguarded)
        guarded_at = earliest_in(guarded)
        assert unguarded_at is not None, "without the guard the drain is consolidated into"
        if guarded_at is not None:
            assert guarded_at >= unguarded_at
