"""Unit tests for workload payload factories and rate profiles."""

from __future__ import annotations

import pytest

from repro.workloads import (
    BurstProfile,
    ConstantRateProfile,
    RampProfile,
    StepProfile,
    gps_payload_factory,
    sensor_payload_factory,
    smart_meter_payload_factory,
)


class TestPayloadFactories:
    def test_sensor_payload_structure(self):
        factory = sensor_payload_factory(sensor_count=10)
        payload = factory(25)
        assert payload["seq"] == 25
        assert payload["key"] == "sensor-5"
        assert isinstance(payload["value"], float)

    def test_gps_payload_structure(self):
        factory = gps_payload_factory(vehicle_count=100)
        payload = factory(257)
        assert payload["key"] == "vehicle-57"
        assert payload["speed_kmph"] >= 0.0
        assert 0 <= payload["heading_deg"] < 360
        assert payload["segment"].startswith("seg-")

    def test_smart_meter_payload_structure(self):
        factory = smart_meter_payload_factory(meter_count=50)
        payload = factory(73)
        assert payload["key"] == "meter-23"
        assert payload["kwh"] > 0.0
        assert "temperature_c" in payload

    def test_factories_are_deterministic_given_seed(self):
        a = gps_payload_factory(seed=5)
        b = gps_payload_factory(seed=5)
        assert [a(i) for i in range(10)] == [b(i) for i in range(10)]

    def test_different_seeds_give_different_values(self):
        a = smart_meter_payload_factory(seed=1)
        b = smart_meter_payload_factory(seed=2)
        assert [a(i)["kwh"] for i in range(20)] != [b(i)["kwh"] for i in range(20)]


class TestRateProfiles:
    def test_constant_profile(self):
        profile = ConstantRateProfile(rate=8.0)
        assert profile.rate_at(0.0) == 8.0
        assert profile.rate_at(1e6) == 8.0
        assert profile.average_rate(0.0, 100.0) == pytest.approx(8.0)

    def test_step_profile_changes_at_boundaries(self):
        profile = StepProfile(steps=[(0.0, 8.0), (100.0, 16.0), (200.0, 4.0)])
        assert profile.rate_at(50.0) == 8.0
        assert profile.rate_at(100.0) == 16.0
        assert profile.rate_at(150.0) == 16.0
        assert profile.rate_at(250.0) == 4.0

    def test_step_profile_sorts_steps(self):
        profile = StepProfile(steps=[(100.0, 16.0), (0.0, 8.0)])
        assert profile.rate_at(10.0) == 8.0

    def test_step_profile_requires_steps(self):
        with pytest.raises(ValueError):
            StepProfile(steps=[])

    def test_ramp_profile_interpolates(self):
        profile = RampProfile(start_rate=8.0, end_rate=16.0, ramp_start_s=100.0, ramp_end_s=200.0)
        assert profile.rate_at(50.0) == 8.0
        assert profile.rate_at(150.0) == pytest.approx(12.0)
        assert profile.rate_at(300.0) == 16.0

    def test_burst_profile_periodic_bursts(self):
        profile = BurstProfile(base_rate=8.0, burst_multiplier=4.0, burst_period_s=100.0, burst_duration_s=10.0)
        assert profile.rate_at(5.0) == 32.0
        assert profile.rate_at(50.0) == 8.0
        assert profile.rate_at(105.0) == 32.0

    def test_average_rate_accounts_for_bursts(self):
        profile = BurstProfile(base_rate=8.0, burst_multiplier=2.0, burst_period_s=100.0, burst_duration_s=50.0)
        assert profile.average_rate(0.0, 100.0) == pytest.approx(12.0, rel=0.05)

    def test_average_rate_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            ConstantRateProfile(8.0).average_rate(10.0, 10.0)
