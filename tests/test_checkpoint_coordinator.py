"""Unit tests for the checkpoint coordinator (wave tracking, re-sends, periodic mode)."""

from __future__ import annotations

import pytest

from repro.dataflow.event import CheckpointAction
from repro.reliability.checkpoint import CheckpointCoordinator, WaveMode, WaveStatus
from repro.sim import Simulator


class FakeRuntime:
    """Minimal emitter/expected-provider pair for coordinator tests."""

    def __init__(self, sim, executors=("a#0", "b#0", "b#1")):
        self.sim = sim
        self.executors = set(executors)
        self.emitted = []

    def emit(self, action, checkpoint_id, mode):
        self.emitted.append((self.sim.now, action, checkpoint_id, mode))

    def expected(self):
        return set(self.executors)


def make_coordinator(sim, executors=("a#0", "b#0", "b#1")):
    runtime = FakeRuntime(sim, executors)
    coordinator = CheckpointCoordinator(sim)
    coordinator.bind(runtime.emit, runtime.expected)
    return coordinator, runtime


class TestWaveLifecycle:
    def test_wave_requires_binding(self, sim):
        with pytest.raises(RuntimeError):
            CheckpointCoordinator(sim).start_wave(CheckpointAction.PREPARE)

    def test_wave_emits_once_on_start(self, sim):
        coordinator, runtime = make_coordinator(sim)
        wave = coordinator.start_wave(CheckpointAction.PREPARE, mode=WaveMode.BROADCAST)
        assert len(runtime.emitted) == 1
        assert runtime.emitted[0][1] is CheckpointAction.PREPARE
        assert wave.status is WaveStatus.IN_PROGRESS

    def test_wave_completes_when_all_expected_ack(self, sim):
        coordinator, runtime = make_coordinator(sim)
        done = []
        wave = coordinator.start_wave(CheckpointAction.PREPARE, on_complete=done.append)
        for executor in ("a#0", "b#0"):
            coordinator.notify_ack(executor, CheckpointAction.PREPARE, wave.checkpoint_id)
        assert not done
        coordinator.notify_ack("b#1", CheckpointAction.PREPARE, wave.checkpoint_id)
        assert done == [wave]
        assert wave.status is WaveStatus.COMPLETE
        assert wave.duration_s is not None

    def test_duplicate_acks_are_idempotent(self, sim):
        coordinator, _ = make_coordinator(sim)
        wave = coordinator.start_wave(CheckpointAction.COMMIT)
        for _ in range(3):
            coordinator.notify_ack("a#0", CheckpointAction.COMMIT, wave.checkpoint_id)
        assert wave.acked == {"a#0"}
        assert wave.status is WaveStatus.IN_PROGRESS

    def test_ack_for_wrong_action_is_ignored(self, sim):
        coordinator, _ = make_coordinator(sim)
        wave = coordinator.start_wave(CheckpointAction.PREPARE)
        coordinator.notify_ack("a#0", CheckpointAction.COMMIT, wave.checkpoint_id)
        assert wave.acked == set()

    def test_empty_expected_set_completes_immediately(self, sim):
        coordinator, _ = make_coordinator(sim, executors=())
        done = []
        wave = coordinator.start_wave(CheckpointAction.INIT, on_complete=done.append)
        assert wave.status is WaveStatus.COMPLETE
        assert done == [wave]

    def test_explicit_expected_set_overrides_provider(self, sim):
        coordinator, _ = make_coordinator(sim)
        wave = coordinator.start_wave(CheckpointAction.INIT, expected={"only#0"})
        coordinator.notify_ack("only#0", CheckpointAction.INIT, wave.checkpoint_id)
        assert wave.status is WaveStatus.COMPLETE

    def test_cancel_wave(self, sim):
        coordinator, _ = make_coordinator(sim)
        wave = coordinator.start_wave(CheckpointAction.PREPARE)
        coordinator.cancel_wave(wave)
        assert wave.status is WaveStatus.CANCELLED
        coordinator.notify_ack("a#0", CheckpointAction.PREPARE, wave.checkpoint_id)
        assert wave.status is WaveStatus.CANCELLED


class TestResend:
    def test_wave_resends_until_complete(self, sim):
        coordinator, runtime = make_coordinator(sim)
        wave = coordinator.start_wave(CheckpointAction.INIT, resend_interval_s=1.0)
        sim.run(until=3.5)
        assert len(runtime.emitted) == 4  # initial + 3 re-sends
        for executor in ("a#0", "b#0", "b#1"):
            coordinator.notify_ack(executor, CheckpointAction.INIT, wave.checkpoint_id)
        emitted_before = len(runtime.emitted)
        sim.run(until=10.0)
        assert len(runtime.emitted) == emitted_before
        assert wave.emit_count == emitted_before

    def test_resend_interval_of_ack_timeout_used_by_dsm(self, sim):
        coordinator, runtime = make_coordinator(sim)
        coordinator.start_wave(CheckpointAction.INIT, resend_interval_s=30.0)
        sim.run(until=65.0)
        assert len(runtime.emitted) == 3  # initial + re-sends at 30 s and 60 s


class TestFullCheckpointAndPeriodic:
    def test_run_checkpoint_chains_prepare_then_commit(self, sim):
        coordinator, runtime = make_coordinator(sim)
        finished = []
        cid = coordinator.run_checkpoint(on_complete=finished.append)
        # PREPARE emitted first; COMMIT only after all PREPARE acks.
        assert [action for _, action, _, _ in runtime.emitted] == [CheckpointAction.PREPARE]
        for executor in ("a#0", "b#0", "b#1"):
            coordinator.notify_ack(executor, CheckpointAction.PREPARE, cid)
        assert [action for _, action, _, _ in runtime.emitted] == [
            CheckpointAction.PREPARE,
            CheckpointAction.COMMIT,
        ]
        for executor in ("a#0", "b#0", "b#1"):
            coordinator.notify_ack(executor, CheckpointAction.COMMIT, cid)
        assert finished == [cid]
        assert coordinator.last_committed_checkpoint() == cid

    def test_periodic_checkpointing_fires_repeatedly(self, sim):
        coordinator, runtime = make_coordinator(sim)
        coordinator.start_periodic(interval_s=10.0)

        def auto_ack():
            for _, action, cid, _ in list(runtime.emitted):
                for executor in ("a#0", "b#0", "b#1"):
                    coordinator.notify_ack(executor, action, cid)

        sim.every(1.0, auto_ack)
        sim.run(until=35.0)
        commits = coordinator.completed_waves(CheckpointAction.COMMIT)
        assert len(commits) == 3

    def test_periodic_skips_tick_while_previous_in_flight(self, sim):
        coordinator, runtime = make_coordinator(sim)
        coordinator.start_periodic(interval_s=5.0)
        # Never ack: only the first PREPARE wave should ever be emitted.
        sim.run(until=30.0)
        prepares = [e for e in runtime.emitted if e[1] is CheckpointAction.PREPARE]
        assert len(prepares) == 1

    def test_double_start_periodic_rejected(self, sim):
        coordinator, _ = make_coordinator(sim)
        coordinator.start_periodic(interval_s=5.0)
        with pytest.raises(RuntimeError):
            coordinator.start_periodic(interval_s=5.0)

    def test_stop_periodic(self, sim):
        coordinator, runtime = make_coordinator(sim)
        coordinator.start_periodic(interval_s=5.0)
        coordinator.stop_periodic()
        sim.run(until=30.0)
        assert runtime.emitted == []
        assert not coordinator.periodic_enabled

    def test_checkpoint_ids_increase(self, sim):
        coordinator, _ = make_coordinator(sim)
        first = coordinator.new_checkpoint_id()
        second = coordinator.new_checkpoint_id()
        assert second == first + 1
        assert coordinator.last_checkpoint_id == second
