"""Tests for the experiment scenario runner (cluster sizing, planning, end-to-end run)."""

from __future__ import annotations

import pytest

from repro.cluster.cloud import CloudProvider
from repro.cluster.vm import D1, D3
from repro.dataflow import topologies
from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.topologies import TABLE1
from repro.experiments.scenarios import (
    ScenarioSpec,
    build_experiment,
    plan_after_scaling,
    provision_target_vms,
    run_migration_experiment,
    vm_counts_for,
)

from tests.conftest import make_runtime


def small_test_dataflow():
    builder = TopologyBuilder("scenario-test")
    builder.add_source("source", rate=8.0)
    builder.add_task("a", latency_s=0.05, stateful=True)
    builder.add_task("b", latency_s=0.05)
    builder.add_sink("sink")
    builder.chain("source", "a", "b", "sink")
    return builder.build()


class TestVMCounts:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_vm_counts_reproduce_table1(self, name):
        counts = vm_counts_for(topologies.by_name(name))
        row = TABLE1[name]
        assert counts.slots == row.task_instances
        assert counts.default_d2 == row.default_vms_2slot
        assert counts.scale_in_d3 == row.scale_in_vms_4slot
        assert counts.scale_out_d1 == row.scale_out_vms_1slot

    def test_vm_counts_for_custom_dataflow(self):
        counts = vm_counts_for(topologies.linear(50))
        assert counts.slots == 50
        assert counts.default_d2 == 25
        assert counts.scale_in_d3 == 13
        assert counts.scale_out_d1 == 50


class TestScenarioSpec:
    def test_invalid_scaling_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(scaling="sideways")

    def test_scenario_name(self):
        assert ScenarioSpec(scaling="in").scenario_name == "scale-in"
        assert ScenarioSpec(scaling="out").scenario_name == "scale-out"


class TestBuildAndPlan:
    def test_build_experiment_provisions_table1_cluster(self):
        spec = ScenarioSpec(dag="star", strategy="dcr", scaling="in")
        handle = build_experiment(spec)
        described = handle.cluster.describe()
        assert described["D2"] == TABLE1["star"].default_vms_2slot
        assert described["D3"] == 1  # the util VM
        assert handle.runtime.deployed

    def test_provision_target_vms_scale_in_uses_d3(self):
        spec = ScenarioSpec(dag="star", strategy="dcr", scaling="in")
        handle = build_experiment(spec)
        target_ids = provision_target_vms(handle)
        assert len(target_ids) == TABLE1["star"].scale_in_vms_4slot
        assert all(handle.cluster.vm(vm_id).vm_type is D3 for vm_id in target_ids)

    def test_provision_target_vms_scale_out_uses_d1(self):
        spec = ScenarioSpec(dag="star", strategy="dcr", scaling="out")
        handle = build_experiment(spec)
        target_ids = provision_target_vms(handle)
        assert len(target_ids) == TABLE1["star"].scale_out_vms_1slot
        assert all(handle.cluster.vm(vm_id).vm_type is D1 for vm_id in target_ids)

    def test_plan_after_scaling_places_user_tasks_on_targets_only(self):
        runtime = make_runtime()
        runtime.start()
        runtime.sim.run(until=1.0)
        provider = CloudProvider(runtime.sim)
        targets = provider.provision(D3, 2, name_prefix="tgt")
        for vm in targets:
            runtime.cluster.add_vm(vm)
        plan = plan_after_scaling(runtime, [vm.vm_id for vm in targets])
        target_ids = {vm.vm_id for vm in targets}
        for executor in runtime.user_executors:
            assert plan.vm_of(executor.executor_id) in target_ids
        # Sources and sinks keep their existing slots.
        assert plan.slot_of("source#0") == runtime.placement.slot_of("source#0")
        assert plan.slot_of("sink#0") == runtime.placement.slot_of("sink#0")

    def test_plan_after_scaling_requires_deployment(self):
        from repro.engine.runtime import TopologyRuntime
        from repro.sim import Simulator
        from tests.conftest import build_cluster, fast_config, tiny_dataflow

        sim = Simulator()
        runtime = TopologyRuntime(tiny_dataflow(), build_cluster(sim), sim=sim, config=fast_config())
        with pytest.raises(ValueError):
            plan_after_scaling(runtime, [])


class TestEndToEnd:
    @pytest.mark.parametrize("strategy", ["dcr", "ccr"])
    def test_short_experiment_produces_metrics(self, strategy):
        result = run_migration_experiment(
            dag="custom",
            strategy=strategy,
            scaling="in",
            migrate_at_s=20.0,
            post_migration_s=120.0,
            seed=11,
            dataflow=small_test_dataflow(),
        )
        metrics = result.metrics
        assert metrics.restore_duration_s is not None
        assert metrics.restore_duration_s > 0
        assert metrics.rebalance_duration_s is not None
        assert metrics.replayed_message_count == 0
        assert result.report.is_complete

    def test_timelines_available_from_result(self):
        result = run_migration_experiment(
            dag="custom",
            strategy="ccr",
            scaling="out",
            migrate_at_s=20.0,
            post_migration_s=90.0,
            seed=11,
            dataflow=small_test_dataflow(),
        )
        assert result.input_timeline()
        assert result.output_timeline()
        assert result.latency_timeline()
        assert result.target_vm_ids
