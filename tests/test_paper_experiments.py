"""End-to-end shape tests on a real paper dataflow (Star) with the paper's timing model.

These are slower than the unit tests (a few seconds of wall time) but verify
that the headline claims of the paper hold in the reproduction:

* CCR restores fastest, DSM slowest;
* only DSM loses and replays messages;
* DCR/CCR deliver every pre-migration event exactly once;
* the rebalance command duration is roughly constant (~7 s).
"""

from __future__ import annotations

import pytest

from repro.experiments import run_migration_experiment


MIGRATE_AT = 60.0
POST = 300.0


@pytest.fixture(scope="module")
def star_results():
    """Run the three strategies once on the Star DAG (scale-in) and share the results."""
    return {
        strategy: run_migration_experiment(
            dag="star",
            strategy=strategy,
            scaling="in",
            migrate_at_s=MIGRATE_AT,
            post_migration_s=POST,
            seed=2018,
        )
        for strategy in ("dsm", "dcr", "ccr")
    }


class TestHeadlineClaims:
    def test_restore_ordering(self, star_results):
        restore = {name: result.metrics.restore_duration_s for name, result in star_results.items()}
        assert restore["ccr"] < restore["dsm"]
        assert restore["dcr"] < restore["dsm"]
        assert restore["ccr"] <= restore["dcr"] + 1.0

    def test_dsm_restore_exceeds_30s_due_to_init_timeouts(self, star_results):
        assert star_results["dsm"].metrics.restore_duration_s > 30.0

    def test_proposed_strategies_restore_within_50s(self, star_results):
        """The paper: "we can migrate dataflows of large sizes within 50 sec"."""
        assert star_results["dcr"].metrics.restore_duration_s < 50.0
        assert star_results["ccr"].metrics.restore_duration_s < 50.0

    def test_only_dsm_replays_messages(self, star_results):
        assert star_results["dsm"].metrics.replayed_message_count > 0
        assert star_results["dcr"].metrics.replayed_message_count == 0
        assert star_results["ccr"].metrics.replayed_message_count == 0

    def test_only_dsm_has_recovery_time(self, star_results):
        assert star_results["dsm"].metrics.recovery_time_s is not None
        assert star_results["dcr"].metrics.recovery_time_s is None
        assert star_results["ccr"].metrics.recovery_time_s is None

    def test_dcr_has_no_catchup(self, star_results):
        assert star_results["dcr"].metrics.catchup_time_s is None

    def test_drain_time_larger_for_dcr_than_ccr(self, star_results):
        assert (
            star_results["dcr"].metrics.drain_capture_duration_s
            > star_results["ccr"].metrics.drain_capture_duration_s
        )

    def test_rebalance_duration_roughly_constant(self, star_results):
        durations = [result.metrics.rebalance_duration_s for result in star_results.values()]
        assert all(5.0 <= d <= 10.0 for d in durations)
        assert max(durations) - min(durations) < 3.0

    def test_no_message_loss_for_dcr_and_ccr(self, star_results):
        # In Star every root fans out to exactly 4 sink events (32 ev/s out of
        # 8 ev/s in); with no loss and no duplication every root emitted well
        # before the end of the run is seen exactly 4 times at the sink.
        expected_copies = 4
        for name in ("dcr", "ccr"):
            result = star_results[name]
            log = result.log
            horizon = log.sim.now - 10.0
            emitted = {e.root_id for e in log.source_emits if e.time < horizon}
            received_counts = {}
            for receipt in log.sink_receipts:
                received_counts[receipt.root_id] = received_counts.get(receipt.root_id, 0) + 1
            for root in emitted:
                assert received_counts.get(root, 0) == expected_copies, name
            assert all(count <= expected_copies for count in received_counts.values()), name

    def test_output_gap_exists_during_migration(self, star_results):
        """During the restore there is a window with zero output throughput."""
        for result in star_results.values():
            request = result.report.requested_at
            restore = result.metrics.restore_duration_s
            gap_receipts = result.log.receipts_between(request + 10.0, request + restore - 1.0)
            assert len(gap_receipts) == 0

    def test_sources_observed_paused_only_for_dcr_ccr(self, star_results):
        def paused_events(result):
            return [r for r in result.log.lifecycle if r.status == "paused"]

        assert not paused_events(star_results["dsm"])
        assert paused_events(star_results["dcr"])
        assert paused_events(star_results["ccr"])

    def test_stabilization_reached_for_proposed_strategies(self, star_results):
        for name in ("dcr", "ccr"):
            assert star_results[name].metrics.stabilization_time_s is not None, name
        # DSM either has not stabilized within the observation window at all,
        # or it stabilizes no earlier than CCR (modulo the 5 s detector bins).
        dsm_stab = star_results["dsm"].metrics.stabilization_time_s
        ccr_stab = star_results["ccr"].metrics.stabilization_time_s
        assert dsm_stab is None or dsm_stab >= ccr_stab - 10.0
