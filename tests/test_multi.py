"""Multi-tenant clusters: bin-packing, arbitration, the manager, end-to-end runs.

The arbitration unit tests pin the four policy behaviours the subsystem
exists for -- budget contention (no double-provisioning past the cap),
preemption by priority, concurrent-migration serialization and retiring-VM
publication -- and the end-to-end tests run real tenants with offset surges
on one shared fleet against the acceptance criteria.
"""

from __future__ import annotations

import pytest

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.placement import PackingError, bin_pack_plan
from repro.cluster.scheduler import SchedulingError, SharedFleetScheduler
from repro.cluster.vm import D1, D2, D3
from repro.dataflow.builder import TopologyBuilder
from repro.elastic import ControllerConfig
from repro.experiments.multi import default_budget_slots, run_multi_experiment, surge_window
from repro.multi import ClusterManager, ScaleArbiter
from repro.sim import Simulator
from repro.workloads.profiles import StepProfile

from tests.conftest import fast_config


def chain(name: str = "chain", parallelism: int = 1, rate: float = 8.0, latency_s: float = 0.005):
    """A fast source->work->sink chain for manager tests."""
    builder = TopologyBuilder(name)
    builder.add_source("source", rate=rate)
    builder.add_task("work", parallelism=parallelism, latency_s=latency_s, stateful=True)
    builder.add_sink("sink")
    builder.chain("source", "work", "sink")
    return builder.build()


def worker_cluster(sim, d2_count=3):
    provider = CloudProvider(sim)
    cluster = Cluster()
    for vm in provider.provision(D2, d2_count, name_prefix="w"):
        cluster.add_vm(vm)
    return provider, cluster


# ---------------------------------------------------------------- bin-packing
class TestBinPacking:
    def test_prefers_partially_filled_vms(self, sim):
        _, cluster = worker_cluster(sim, d2_count=3)
        cluster.vm("w-002").slots[0].assign("other#0")  # partially filled
        plan = bin_pack_plan(["a#0", "b#0"], cluster)
        # The free slot of the partially filled VM is used before any empty VM.
        assert plan.vm_of("a#0") == "w-002"
        assert plan.vm_of("b#0") == "w-001"

    def test_never_reassigns_occupied_slots(self, sim):
        _, cluster = worker_cluster(sim, d2_count=2)
        occupied = cluster.vm("w-001").slots[0]
        occupied.assign("other#0")
        plan = bin_pack_plan(["a#0", "b#0", "c#0"], cluster)
        assert occupied.slot_id not in plan.slot_to_vm or plan.slot_to_vm[occupied.slot_id]
        assert occupied.slot_id not in set(plan.assignments.values())

    def test_full_fleet_raises(self, sim):
        _, cluster = worker_cluster(sim, d2_count=1)
        with pytest.raises(PackingError):
            bin_pack_plan(["a#0", "b#0", "c#0"], cluster)

    def test_exclude_vms_and_pinning(self, sim):
        provider, cluster = worker_cluster(sim, d2_count=2)
        util = provider.provision(D3, 1, name_prefix="util")[0]
        util.tags["role"] = "util:t"
        cluster.add_vm(util)
        # Pinned executors land on the (excluded) util VM; unpinned never do.
        plan = bin_pack_plan(
            ["src#0", "a#0", "b#0"],
            cluster,
            pinned={"src#0": util.vm_id},
            exclude_vms={util.vm_id},
        )
        assert plan.vm_of("src#0") == util.vm_id
        assert all(plan.vm_of(e) != util.vm_id for e in ("a#0", "b#0"))

    def test_shared_fleet_scheduler_dynamic_exclusions(self, sim):
        _, cluster = worker_cluster(sim, d2_count=2)
        scheduler = SharedFleetScheduler(lambda: {"w-001"})
        plan = scheduler.schedule(["a#0", "b#0"], cluster)
        assert {plan.vm_of("a#0"), plan.vm_of("b#0")} == {"w-002"}
        with pytest.raises(SchedulingError):
            scheduler.schedule(["a#0", "b#0", "c#0"], cluster)


# ---------------------------------------------------------------- arbitration
class TestScaleArbiter:
    def make(self, sim=None, budget=20, max_concurrent=1, d2_count=2):
        sim = sim or Simulator()
        provider, cluster = worker_cluster(sim, d2_count=d2_count)
        arbiter = ScaleArbiter(cluster, budget_slots=budget,
                               max_concurrent_migrations=max_concurrent)
        return provider, cluster, arbiter

    def test_registration_required_and_validated(self):
        _, _, arbiter = self.make()
        with pytest.raises(KeyError):
            arbiter.propose("ghost", "out", 2, now=0.0)
        arbiter.register_tenant("a")
        with pytest.raises(ValueError):
            arbiter.register_tenant("a")
        with pytest.raises(ValueError):
            arbiter.register_tenant("b", weight=0.0)

    def test_budget_contention_never_double_provisions(self):
        # Fleet has 4 physical slots, budget 12: either tenant's 6-slot
        # proposal fits alone, but granting both would double-provision past
        # the cap -- the second must wait for the first to release.
        provider, cluster, arbiter = self.make(budget=12, max_concurrent=2)
        arbiter.register_tenant("a")
        arbiter.register_tenant("b")
        assert arbiter.propose("a", "out", 6, now=0.0).granted
        decision = arbiter.propose("b", "out", 6, now=1.0)
        assert not decision.granted
        assert decision.reason == "budget"
        assert arbiter.committed_slots() <= arbiter.budget_slots
        assert arbiter.max_committed_slots <= arbiter.budget_slots

        # A provisions (reservation becomes physical -- no double counting).
        new_vms = provider.provision(D1, 6, name_prefix="a-d1")
        for vm in new_vms:
            cluster.add_vm(vm)
        arbiter.notify_provisioned("a", [vm.vm_id for vm in new_vms])
        assert arbiter.committed_slots() == 10  # 4 original + 6 new, no reservation
        # Still over budget for b until a releases its old fleet.
        assert not arbiter.propose("b", "out", 6, now=2.0).granted
        arbiter.notify_complete("a")
        for vm_id in ("w-001", "w-002"):
            provider.release_from(cluster, vm_id)
        assert arbiter.propose("b", "out", 6, now=3.0).granted
        assert arbiter.max_committed_slots <= arbiter.budget_slots

    def test_concurrent_migration_serialization(self):
        _, _, arbiter = self.make(budget=100)
        arbiter.register_tenant("a")
        arbiter.register_tenant("b")
        assert arbiter.propose("a", "out", 4, now=0.0).granted
        decision = arbiter.propose("b", "out", 4, now=1.0)
        assert not decision.granted and decision.reason == "migration-in-flight"
        arbiter.notify_complete("a")
        assert arbiter.propose("b", "out", 4, now=2.0).granted

    def test_in_flight_tenant_cannot_propose_again(self):
        _, _, arbiter = self.make(budget=100, max_concurrent=2)
        arbiter.register_tenant("a")
        assert arbiter.propose("a", "out", 4, now=0.0).granted
        assert not arbiter.propose("a", "out", 4, now=1.0).granted

    def test_preemption_by_priority(self):
        """Freed capacity goes to the waiting high-priority tenant first,
        even though the low-priority tenant asked earlier."""
        _, _, arbiter = self.make(budget=100)
        arbiter.register_tenant("low", priority=1)
        arbiter.register_tenant("high", priority=5)
        arbiter.register_tenant("runner", priority=1)
        assert arbiter.propose("runner", "out", 4, now=0.0).granted
        assert not arbiter.propose("low", "out", 4, now=1.0).granted   # waits
        assert not arbiter.propose("high", "out", 4, now=2.0).granted  # waits
        arbiter.notify_complete("runner")
        decision = arbiter.propose("low", "out", 4, now=3.0)
        assert not decision.granted and decision.reason == "yield-to-higher-priority"
        assert arbiter.propose("high", "out", 4, now=4.0).granted
        # With the high-priority tenant served (and done), low gets through.
        arbiter.notify_complete("high")
        assert arbiter.propose("low", "out", 4, now=5.0).granted

    def test_proportional_share_fallback(self):
        """Among equal priorities, the tenant holding fewer slots per unit
        of weight wins the next grant."""
        _, _, arbiter = self.make(budget=100)
        arbiter.register_tenant("heavy", holdings_fn=lambda: 12)
        arbiter.register_tenant("light", holdings_fn=lambda: 2)
        arbiter.register_tenant("runner")
        assert arbiter.propose("runner", "out", 4, now=0.0).granted
        assert not arbiter.propose("heavy", "out", 4, now=1.0).granted
        assert not arbiter.propose("light", "out", 4, now=2.0).granted
        arbiter.notify_complete("runner")
        decision = arbiter.propose("heavy", "out", 4, now=3.0)
        assert not decision.granted and decision.reason == "proportional-share"
        assert arbiter.propose("light", "out", 4, now=4.0).granted

    def test_withdraw_clears_waiting_claim(self):
        _, _, arbiter = self.make(budget=100)
        arbiter.register_tenant("a", priority=5)
        arbiter.register_tenant("b", priority=1)
        arbiter.register_tenant("runner", priority=1)
        assert arbiter.propose("runner", "out", 4, now=0.0).granted
        assert not arbiter.propose("a", "out", 4, now=1.0).granted
        arbiter.notify_complete("runner")
        arbiter.withdraw("a")  # a's surge ended; its claim must not block b
        assert arbiter.propose("b", "out", 4, now=2.0).granted

    def test_retiring_vms_published_and_cleared(self):
        _, _, arbiter = self.make(budget=100)
        arbiter.register_tenant("a")
        assert arbiter.propose("a", "out", 4, now=0.0).granted
        arbiter.notify_migration_started("a", ["w-001"])
        assert arbiter.retiring_vms == {"w-001"}
        arbiter.notify_complete("a")
        assert arbiter.retiring_vms == set()


# -------------------------------------------------------------------- manager
class TestClusterManager:
    def two_tenant_manager(self, budget=40, **tenant_kwargs):
        manager = ClusterManager(budget_slots=budget, provisioning_latency_s=1.0,
                                 fleet_sample_interval_s=5.0)
        for name, parallelism in (("alpha", 3), ("beta", 3)):
            manager.add_tenant(
                name,
                chain(name=name, parallelism=parallelism),
                strategy="ccr",
                config=fast_config("ccr", seed=11),
                controller_config=ControllerConfig(
                    check_interval_s=5.0, confirm_samples=2, cooldown_s=10.0
                ),
                **tenant_kwargs,
            )
        return manager

    def test_colocation_saves_vms_vs_private_roundup(self):
        manager = self.two_tenant_manager()
        manager.deploy()
        # 3 + 3 instances share ceil(6/2) = 3 D2s; private fleets would round
        # up to 2 + 2 = 4.
        fleet = manager.cluster.describe()
        assert fleet["D2"] == 3
        alpha_vms = set(manager.tenant("alpha").runtime.placement.vms_used)
        beta_vms = set(manager.tenant("beta").runtime.placement.vms_used)
        # At least one worker VM hosts both tenants (true co-location).
        assert (alpha_vms & beta_vms) - {
            manager.tenant("alpha").util_vm_id, manager.tenant("beta").util_vm_id
        }

    def test_each_tenant_gets_its_own_util_vm(self):
        manager = self.two_tenant_manager()
        manager.deploy()
        alpha, beta = manager.tenant("alpha"), manager.tenant("beta")
        assert alpha.util_vm_id != beta.util_vm_id
        for tenant in (alpha, beta):
            placement = tenant.runtime.placement
            for executor in list(tenant.runtime.source_executors) + list(tenant.runtime.sink_executors):
                assert placement.vm_of(executor.executor_id) == tenant.util_vm_id
            # No user task ever lands on any util VM.
            for executor in tenant.runtime.user_executors:
                assert placement.vm_of(executor.executor_id) not in (
                    alpha.util_vm_id, beta.util_vm_id
                )

    def test_budget_too_small_for_tenants_rejected(self):
        manager = self.two_tenant_manager(budget=5)
        with pytest.raises(ValueError, match="budget"):
            manager.deploy()

    def test_budget_check_accounts_for_whole_vm_roundup(self):
        """An odd instance total provisions one extra D2 slot; a budget that
        admits the instances but not the provisioned fleet must be rejected
        up front, not breach the arbiter invariant at t=0."""
        manager = ClusterManager(budget_slots=5)
        manager.add_tenant("odd", chain(name="odd", parallelism=3))  # 3 instances
        # 3 instances fit in 5, but 2 whole D2s = 4 slots do fit: deploy ok.
        manager.deploy()
        assert manager.arbiter.committed_slots() <= 5

        tight = ClusterManager(budget_slots=5)
        tight.add_tenant("odd", chain(name="odd", parallelism=5))  # 5 instances
        # 5 instances round up to 3 D2s = 6 provisioned slots > 5.
        with pytest.raises(ValueError, match="provisioned"):
            tight.deploy()

    def test_add_tenant_after_deploy_rejected(self):
        manager = self.two_tenant_manager()
        manager.deploy()
        with pytest.raises(RuntimeError):
            manager.add_tenant("late", chain(name="late"))

    def test_offset_surges_scale_both_tenants_under_budget(self):
        manager = ClusterManager(budget_slots=30, provisioning_latency_s=1.0,
                                 fleet_sample_interval_s=5.0)
        for index, name in enumerate(("alpha", "beta")):
            surge_start = 40.0 + 80.0 * index
            manager.add_tenant(
                name,
                chain(name=name, parallelism=1),
                strategy="ccr",
                profile=StepProfile(steps=[(0.0, 8.0), (surge_start, 24.0),
                                           (surge_start + 60.0, 8.0)]),
                config=fast_config("ccr", seed=23),
                controller_config=ControllerConfig(
                    check_interval_s=5.0, confirm_samples=2, cooldown_s=20.0
                ),
            )
        manager.deploy()
        manager.start()
        manager.run(until=240.0)
        manager.stop()

        for name in ("alpha", "beta"):
            controller = manager.tenant(name).controller
            outs = [a for a in controller.actions if a.direction == "out"]
            assert outs, f"tenant {name} never scaled out"
            assert all(a.is_complete for a in controller.actions[:-1])
        # The budget invariant held at every instant the arbiter accounted.
        assert manager.arbiter.max_committed_slots <= manager.arbiter.budget_slots
        assert all(s.worker_slots <= manager.arbiter.budget_slots
                   for s in manager.fleet_samples)

    def test_tight_budget_defers_but_never_exceeds(self):
        manager = ClusterManager(budget_slots=10, provisioning_latency_s=1.0,
                                 fleet_sample_interval_s=5.0)
        # Both tenants surge together on a budget with room for only one
        # expansion: the arbiter must defer one, and the cap must hold.
        for name in ("alpha", "beta"):
            manager.add_tenant(
                name,
                chain(name=name, parallelism=1),
                strategy="ccr",
                profile=StepProfile(steps=[(0.0, 8.0), (40.0, 24.0)]),
                config=fast_config("ccr", seed=29),
                controller_config=ControllerConfig(
                    check_interval_s=5.0, confirm_samples=2, cooldown_s=20.0
                ),
            )
        manager.deploy()
        manager.start()
        manager.run(until=120.0)
        manager.stop()

        deferrals = manager.arbiter.deferrals()
        assert deferrals, "contending surges on a tight budget must defer someone"
        assert manager.arbiter.max_committed_slots <= 10
        assert all(s.worker_slots <= 10 for s in manager.fleet_samples)


# ------------------------------------------------------------------ experiment
class TestMultiExperiment:
    def test_surge_windows_are_offset(self):
        for i in range(3):
            start, end = surge_window(600.0, i)
            assert 0 < start < end < 600.0
            if i:
                prev_start, prev_end = surge_window(600.0, i - 1)
                assert start > prev_start and start < prev_end + 600.0 * 0.22

    def test_default_budget_admits_all_tenants(self):
        budget = default_budget_slots(["traffic", "grid"], 2.0)
        assert budget >= 13 + 21

    def test_acceptance_two_dags_offset_surges_vs_private_baseline(self):
        """The ISSUE acceptance: >=2 dataflows with offset surges on one
        shared fleet; the arbiter never exceeds the budget or overlaps
        migrations; per-tenant latency/utilization is reported vs. the
        private-fleet baseline."""
        result = run_multi_experiment(
            dags=("traffic", "linear"),
            strategy="ccr",
            duration_s=400.0,
            surge_multiplier=2.0,
            elastic_parallelism=True,
        )
        shared = result.shared
        assert len(shared.tenants) == 2

        # Every tenant rode its surge: at least one completed scale-out each.
        for name, summary in shared.tenants.items():
            outs = [a for a in summary.actions if a.direction == "out"]
            assert outs, f"tenant {name} never scaled out"
            assert summary.receipts > 0
            assert result.surge_windows[name][1] <= 400.0

        # Budget and serialization invariants.
        assert shared.max_committed_slots <= shared.budget_slots
        assert all(s.worker_slots <= shared.budget_slots for s in shared.fleet_samples)
        assert shared.max_concurrent_migrations() <= 1

        # The private baseline exists and the comparison is computable.
        assert set(result.private) == set(shared.tenants)
        for name in shared.tenants:
            ratio = result.latency_ratio(name)
            assert ratio is not None and ratio > 0
        assert shared.mean_utilization > 0
        assert result.private_mean_utilization is not None
        assert result.private_total_cost > 0

    def test_priorities_validated(self):
        with pytest.raises(ValueError, match="priorities"):
            run_multi_experiment(dags=("traffic", "grid"), priorities=(1,),
                                 include_private_baseline=False, duration_s=60.0)


class TestIncrementalReFleet:
    """Smarter re-fleet on scale-in: a consolidating tenant re-uses
    partially-free shared VMs instead of provisioning a fresh private fleet."""

    @pytest.fixture(scope="class")
    def runs(self):
        def run(placement):
            return run_multi_experiment(
                dags=("traffic", "linear"),
                strategy="ccr",
                duration_s=500.0,
                surge_multiplier=2.0,
                elastic_parallelism=True,
                include_private_baseline=False,
                placement=placement,
            )

        return {p: run(p) for p in ("full-replace", "incremental")}

    @staticmethod
    def actions(result):
        return [
            action
            for summary in result.shared.tenants.values()
            for action in summary.actions
        ]

    def test_consolidation_reuses_shared_vms_without_provisioning(self, runs):
        incremental = runs["incremental"]
        ins = [a for a in self.actions(incremental) if a.direction == "in"]
        assert ins, "at least one tenant must consolidate after its surge"
        reused = [a for a in ins if not a.provisioned_vm_ids]
        assert reused, "a consolidation must absorb into the existing shared fleet"
        for action in reused:
            assert action.provision_counts == {}
            assert action.kept_vm_ids, "the re-used shared VMs must be recorded"
            assert action.is_complete

        # Under full replacement every consolidation provisions a fresh fleet.
        full_ins = [a for a in self.actions(runs["full-replace"]) if a.direction == "in"]
        assert full_ins and all(a.provisioned_vm_ids for a in full_ins)

    def test_provisioning_footprint_shrinks(self, runs):
        def slots_provisioned(result):
            from repro.cluster.vm import VM_TYPES

            return sum(
                VM_TYPES[name].slots * count
                for action in self.actions(result)
                for name, count in action.provision_counts.items()
            )

        assert slots_provisioned(runs["incremental"]) < slots_provisioned(
            runs["full-replace"]
        )

    def test_budget_invariants_hold_with_incremental_placement(self, runs):
        shared = runs["incremental"].shared
        assert shared.max_committed_slots <= shared.budget_slots
        assert shared.max_concurrent_migrations() <= 1
