"""Rate-profile semantics and profile-driven source emission.

Complements the basic profile checks in ``test_workloads.py`` with the
boundary/ordering cases the elastic loop depends on, the named presets, and
the engine-level behaviour: a source whose emission rate follows its profile
over simulated time, re-arming the emit timer on rate changes.
"""

from __future__ import annotations

import pytest

from repro.dataflow.builder import TopologyBuilder
from repro.engine.runtime import TopologyRuntime
from repro.workloads import (
    PROFILE_PRESETS,
    BurstProfile,
    ConstantRateProfile,
    RampProfile,
    StepProfile,
    profile_by_name,
)

from tests.conftest import build_cluster, fast_config
from repro.sim import Simulator


class TestStepProfileBoundaries:
    def test_rate_before_first_step_is_first_rate(self):
        profile = StepProfile(steps=[(60.0, 16.0), (120.0, 4.0)])
        assert profile.rate_at(0.0) == 16.0
        assert profile.rate_at(59.999) == 16.0

    def test_boundary_time_belongs_to_the_new_level(self):
        profile = StepProfile(steps=[(0.0, 8.0), (100.0, 24.0)])
        assert profile.rate_at(99.999) == 8.0
        assert profile.rate_at(100.0) == 24.0

    def test_unsorted_steps_are_ordered_by_time(self):
        profile = StepProfile(steps=[(200.0, 2.0), (0.0, 8.0), (100.0, 16.0)])
        assert [s[0] for s in profile.steps] == [0.0, 100.0, 200.0]
        assert profile.rate_at(150.0) == 16.0
        assert profile.rate_at(200.0) == 2.0

    def test_average_rate_weights_step_durations(self):
        profile = StepProfile(steps=[(0.0, 8.0), (50.0, 24.0)])
        # Half the window at 8, half at 24 -> 16 on average.
        assert profile.average_rate(0.0, 100.0, samples=1000) == pytest.approx(16.0, rel=0.01)


class TestRampProfileEndpoints:
    def test_exact_endpoints(self):
        profile = RampProfile(start_rate=8.0, end_rate=32.0, ramp_start_s=100.0, ramp_end_s=300.0)
        assert profile.rate_at(100.0) == 8.0
        assert profile.rate_at(300.0) == 32.0

    def test_flat_before_and_after_the_ramp(self):
        profile = RampProfile(start_rate=8.0, end_rate=32.0, ramp_start_s=100.0, ramp_end_s=300.0)
        assert profile.rate_at(0.0) == 8.0
        assert profile.rate_at(1e9) == 32.0

    def test_midpoint_and_average(self):
        profile = RampProfile(start_rate=8.0, end_rate=24.0, ramp_start_s=0.0, ramp_end_s=100.0)
        assert profile.rate_at(50.0) == pytest.approx(16.0)
        assert profile.average_rate(0.0, 100.0, samples=1000) == pytest.approx(16.0, rel=0.01)


class TestBurstProfilePhaseMath:
    def test_burst_covers_exactly_the_burst_duration(self):
        profile = BurstProfile(base_rate=8.0, burst_multiplier=4.0,
                               burst_period_s=100.0, burst_duration_s=10.0)
        assert profile.rate_at(0.0) == 32.0
        assert profile.rate_at(9.999) == 32.0
        # The boundary instant belongs to the base phase.
        assert profile.rate_at(10.0) == 8.0
        assert profile.rate_at(99.999) == 8.0

    def test_phase_wraps_every_period(self):
        profile = BurstProfile(base_rate=8.0, burst_multiplier=4.0,
                               burst_period_s=100.0, burst_duration_s=10.0)
        for k in range(5):
            assert profile.rate_at(k * 100.0 + 5.0) == 32.0
            assert profile.rate_at(k * 100.0 + 50.0) == 8.0

    def test_non_positive_period_means_no_bursts(self):
        profile = BurstProfile(base_rate=8.0, burst_multiplier=4.0,
                               burst_period_s=0.0, burst_duration_s=10.0)
        assert profile.rate_at(0.0) == 8.0
        assert profile.rate_at(123.0) == 8.0

    def test_average_rate_matches_duty_cycle(self):
        profile = BurstProfile(base_rate=10.0, burst_multiplier=3.0,
                               burst_period_s=100.0, burst_duration_s=20.0)
        # 20% of the time at 30, 80% at 10 -> 14 on average.
        assert profile.average_rate(0.0, 500.0, samples=5000) == pytest.approx(14.0, rel=0.01)


class TestNamedPresets:
    def test_all_presets_constructible(self):
        for name in PROFILE_PRESETS:
            profile = profile_by_name(name, base_rate=8.0, duration_s=600.0)
            assert profile.rate_at(0.0) > 0

    def test_surge_rises_and_returns(self):
        profile = profile_by_name("surge", base_rate=8.0, duration_s=600.0)
        assert profile.rate_at(0.0) == pytest.approx(8.0)
        assert profile.rate_at(300.0) == pytest.approx(24.0)
        assert profile.rate_at(599.0) == pytest.approx(8.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            profile_by_name("tsunami")


# --------------------------------------------------------------------------
# Engine level: profile-driven emission.
# --------------------------------------------------------------------------
def profiled_runtime(profile, rate: float = 10.0) -> TopologyRuntime:
    """A deployed source->task->sink runtime whose source follows ``profile``."""
    builder = TopologyBuilder("profiled")
    builder.add_source("source", rate=rate, profile=profile)
    builder.add_task("work", parallelism=1, latency_s=0.001)
    builder.add_sink("sink")
    builder.chain("source", "work", "sink")
    sim = Simulator()
    cluster = build_cluster(sim, worker_vms=1)
    runtime = TopologyRuntime(builder.build(), cluster, sim=sim, config=fast_config("dcr"))
    runtime.deploy()
    runtime.start()
    return runtime


class TestProfileDrivenSource:
    def test_emission_follows_step_profile(self):
        profile = StepProfile(steps=[(0.0, 10.0), (10.0, 40.0), (20.0, 10.0)])
        runtime = profiled_runtime(profile)
        runtime.sim.run(until=30.0)
        log = runtime.log
        low1 = len(log.emits_between(0.0, 10.0))
        high = len(log.emits_between(10.5, 19.5))
        low2 = len(log.emits_between(20.5, 29.5))
        assert low1 == pytest.approx(100, abs=2)
        assert high == pytest.approx(9.0 * 40.0, abs=4)
        assert low2 == pytest.approx(9.0 * 10.0, abs=2)

    def test_source_rate_attribute_tracks_profile(self):
        profile = StepProfile(steps=[(0.0, 10.0), (5.0, 20.0)])
        runtime = profiled_runtime(profile)
        source = runtime.source_executors[0]
        runtime.sim.run(until=1.0)
        assert source.rate == pytest.approx(10.0)
        runtime.sim.run(until=6.0)
        assert source.rate == pytest.approx(20.0)

    def test_zero_rate_idles_then_resumes(self):
        profile = StepProfile(steps=[(0.0, 10.0), (5.0, 0.0), (10.0, 10.0)])
        runtime = profiled_runtime(profile)
        runtime.sim.run(until=15.0)
        quiet = len(runtime.log.emits_between(5.5, 9.9))
        resumed = len(runtime.log.emits_between(10.5, 14.9))
        assert quiet == 0
        assert resumed > 30

    def test_set_rate_overrides_profile_immediately(self):
        profile = ConstantRateProfile(rate=10.0)
        runtime = profiled_runtime(profile)
        source = runtime.source_executors[0]
        runtime.sim.run(until=5.0)
        source.set_rate(50.0)
        runtime.sim.run(until=10.0)
        assert source.profile is None
        fast_window = len(runtime.log.emits_between(5.2, 9.8))
        assert fast_window == pytest.approx(4.6 * 50.0, abs=10)

    def test_fixed_rate_source_unchanged_by_refactor(self):
        runtime = profiled_runtime(None, rate=10.0)
        runtime.sim.run(until=10.0)
        # Ticks at 0.1, 0.2, ..., 10.0 -> exactly 100 emissions.
        assert len(runtime.log.source_emits) == 100

    def test_stop_cancels_emit_and_drain_timers(self):
        """Regression: stop() used to leave a live drain timer emitting backlog."""
        runtime = profiled_runtime(None, rate=10.0)
        source = runtime.source_executors[0]
        runtime.sim.run(until=2.0)
        runtime.pause_sources()
        runtime.sim.run(until=4.0)  # backlog accumulates while paused
        assert source.backlog_size > 0
        runtime.unpause_sources()   # drain timer is now live
        runtime.stop_sources()
        emitted_at_stop = len(runtime.log.source_emits)
        runtime.sim.run(until=20.0)
        assert len(runtime.log.source_emits) == emitted_at_stop
        assert source._emit_timer is None
        assert source._drain_timer is None
