"""Columnar EventLog specifics: bulk appends, lazy views, interning.

The bit-compatibility of the columnar backend against the classic one is
pinned by ``tests/test_log_equivalence.py``; these tests cover the columnar
surface directly — the ``extend_*`` bulk-append API both backends share, the
lazy row/time views (bounds, slices, equality, iteration types) and the
derived state kept in sync across bulk and scalar appends.
"""

from __future__ import annotations

import pytest

from repro.metrics.log import HAVE_COLUMNAR, ColumnarEventLog, EventLog
from repro.sim.shard import log_digest

pytestmark = pytest.mark.skipif(not HAVE_COLUMNAR, reason="numpy unavailable")


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0


def _scalar_filled(log_cls):
    """Reference log filled one record at a time through the scalar API."""
    clock = _Clock()
    log = log_cls(clock)
    for i in range(8):
        clock.now = 1.0 + i * 0.5
        log.record_source_emit(root_id=100 + i, source="src", replay_count=1 if i == 3 else 0)
    for i in range(8):
        clock.now = 10.0 + i * 0.25
        log.record_sink_receipt(root_id=100 + i, event_id=500 + i,
                                sink="sink_a" if i % 2 == 0 else "sink_b",
                                root_emitted_at=1.0 + i * 0.5,
                                replay_count=1 if i == 3 else 0)
    clock.now = 20.0
    return log


def _bulk_filled(log_cls):
    """The same records appended through the bulk extend_* API."""
    clock = _Clock()
    log = log_cls(clock)
    emit_times = [1.0 + i * 0.5 for i in range(8)]
    roots = [100 + i for i in range(8)]
    log.extend_emits(emit_times[:3], roots[:3], "src")
    log.extend_emits(emit_times[3:4], roots[3:4], "src", replay_count=1)
    log.extend_emits(emit_times[4:], roots[4:], "src")
    receipt_times = [10.0 + i * 0.25 for i in range(8)]
    events = [500 + i for i in range(8)]
    # Multi-sink slice via sink_indices, plus single-name slices around it.
    log.extend_receipts(receipt_times[:3], roots[:3], events[:3],
                        ["sink_a", "sink_b"], emit_times[:3],
                        sink_indices=[0, 1, 0])
    log.extend_receipts(receipt_times[3:4], roots[3:4], events[3:4],
                        "sink_b", emit_times[3:4], replay_count=1)
    log.extend_receipts(receipt_times[4:], roots[4:], events[4:],
                        ["sink_a", "sink_b"], emit_times[4:],
                        sink_indices=[0, 1, 0, 1])
    clock.now = 20.0
    return log


@pytest.mark.parametrize("log_cls", [EventLog, ColumnarEventLog])
def test_bulk_extend_matches_scalar_records(log_cls):
    scalar = _scalar_filled(log_cls)
    bulk = _bulk_filled(log_cls)
    assert log_digest(bulk) == log_digest(scalar)
    assert list(bulk.source_emits) == list(scalar.source_emits)
    assert list(bulk.sink_receipts) == list(scalar.sink_receipts)
    assert bulk.replay_emits == scalar.replay_emits == 1


def test_backends_agree_on_bulk_fill():
    assert log_digest(_bulk_filled(ColumnarEventLog)) == log_digest(_bulk_filled(EventLog))


class TestViews:
    @pytest.fixture()
    def log(self):
        return _bulk_filled(ColumnarEventLog)

    def test_time_views_yield_python_floats(self, log):
        assert all(type(t) is float for t in log.emit_times)
        assert all(type(t) is float for t in log.receipt_times[:])
        assert type(log.emit_times[0]) is float

    def test_views_are_bounds_checked(self, log):
        # The backing buffers over-allocate; indexing past the live prefix
        # must raise, not expose stale garbage.
        assert len(log.emit_times) == 8
        with pytest.raises(IndexError):
            log.emit_times[8]
        with pytest.raises(IndexError):
            log.source_emits[8]
        assert log.emit_times[-1] == 4.5
        assert log.source_emits[-1].root_id == 107

    def test_view_slicing_and_equality(self, log):
        assert log.emit_times[2:4] == [2.0, 2.5]
        assert log.emit_times == [1.0 + i * 0.5 for i in range(8)]
        assert log.receipt_times == list(log.receipt_times)

    def test_row_views_materialize_records(self, log):
        receipt = log.sink_receipts[3]
        assert receipt.sink == "sink_b"
        assert receipt.replay_count == 1
        assert [e.root_id for e in log.source_emits[:2]] == [100, 101]

    def test_bisect_works_against_views(self, log):
        import bisect

        assert bisect.bisect_left(log.emit_times, 2.5) == 3
        assert bisect.bisect_left(log.receipt_times, 10.5) == 2
        assert bisect.bisect_left(log.emit_times, 100.0) == 8


class TestLazyDerivedState:
    def test_first_emit_keeps_earliest_on_replay(self):
        clock = _Clock()
        log = ColumnarEventLog(clock)
        clock.now = 1.0
        log.record_source_emit(root_id=7, source="src")
        # Query forces the lazy map to sync; later appends must re-sync.
        assert log.is_old_root(7, migration_time=2.0)
        clock.now = 5.0
        log.record_source_emit(root_id=7, source="src", replay_count=1)
        log.extend_emits([6.0], [9], "src")
        assert log.is_old_root(7, migration_time=2.0)  # earliest emit wins
        assert not log.is_old_root(9, migration_time=2.0)

    def test_distinct_roots_syncs_across_bulk_appends(self):
        clock = _Clock()
        log = ColumnarEventLog(clock)
        log.extend_receipts([1.0, 2.0], [1, 2], [10, 11], "sink", [0.5, 0.5])
        assert log.distinct_roots_received() == 2
        log.extend_receipts([3.0], [1], [12], "sink", [0.5])
        log.record_sink_receipt(root_id=3, event_id=13, sink="sink",
                                root_emitted_at=0.5, replay_count=0, at_time=4.0)
        assert log.distinct_roots_received() == 3
