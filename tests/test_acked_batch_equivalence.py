"""Batch stepping under data acking: the acked equivalence matrix.

PR 6's equivalence contract (``tests/test_batch_equivalence.py``) covered the
unacked path only — the stepper used to disengage the moment acking was on.
Now it stays engaged and replays the acker XOR stream in bulk, with the same
two-tier contract:

* **heap tier** (``batch_vectorize=False``) — *bit-exact* vs the classic
  kernel: identical log digest, identical acker statistics (anchors, acks,
  late acks, completions — including the early completions classic's
  sequential event ids produce through coincidental XOR zero-crossings),
  identical replay counts.  Real acker calls are interleaved at the exact
  classic code points, spout throttling is re-checked per tick, and the
  cascade horizon is clamped to ``now + ack timeout`` so no tree the stretch
  registers can time out mid-stretch.
* **vectorized tier** — equivalent *modulo event-id assignment order*:
  identical emission/receipt times, replay counts, registered/failed totals
  and scaling decisions, with root identity mapped through emission order.
  Anchor/ack/late-ack tallies are excluded from the equivalence class: they
  depend on the literal id *values* (whether a tree's running XOR hash
  happens to cross zero mid-stream), which is exactly the degree of freedom
  the modulo-ids contract gives up.

Loss windows are where the tiers differ observably: which trees *fail* under
a kill depends on which pending hashes had coincidentally collapsed — an id-
value accident (see ``run_migration_experiment``'s docstring on Storm's
ack-hash collision).  Strict replay-count identity through arbitrary loss is
therefore the heap tier's guarantee; the vectorized tier pins it here under a
targeted injected loss (an explicit ``acker.fail`` of a just-emitted root,
positionally identical in every mode) and pins identical scaling decisions on
a full DSM elastic run whose migrations lose in-flight messages.
"""

from __future__ import annotations

import pytest

from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.elastic import ControllerConfig
from repro.engine.runtime import TopologyRuntime
from repro.experiments import run_elastic_experiment
from repro.sim import Simulator
from repro.sim.shard import log_digest
from repro.workloads import StepProfile

from tests.conftest import build_cluster, fast_config
from tests.test_batch_equivalence import fingerprint_modulo_ids


# ------------------------------------------------------------------ builders
def build_acked_grid(batch_stepping: bool, batch_vectorize: bool = True):
    """A deployed Grid runtime with acking on (DSM reliability profile)."""
    reset_event_ids()
    sim = Simulator()
    cluster = build_cluster(sim, worker_vms=11)
    config = fast_config("dsm")
    config.keyed_network_jitter = True
    config.batch_stepping = batch_stepping
    config.batch_vectorize = batch_vectorize
    runtime = TopologyRuntime(topologies.grid(), cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()
    return sim, runtime


def run_acked_windows(batch_stepping: bool, windows: int, step_s: float,
                      batch_vectorize: bool = True):
    sim, runtime = build_acked_grid(batch_stepping, batch_vectorize)
    for _ in range(windows):
        sim.run(until=sim.now + step_s)
    return sim, runtime


def replay_count(runtime: TopologyRuntime) -> int:
    return sum(s.replayed_count for s in runtime.source_executors)


def acked_fingerprint(runtime: TopologyRuntime):
    """The modulo-ids fingerprint plus the id-order-independent acker facts.

    ``registered`` counts one call per emission plus one per replay, and
    ``failed``/replays count whole trees — none depend on id values.  The
    anchor/ack/late-ack tallies *and* the completed/pending split stay out:
    classic's sequential ids complete some trees early through XOR
    zero-crossing accidents, so both are id-value artifacts.
    """
    stats = runtime.acker.stats
    return (
        fingerprint_modulo_ids(runtime),
        stats.registered,
        stats.failed,
        replay_count(runtime),
    )


WINDOWS = [(1, 10.0), (20, 0.5), (7, 1.3)]
WINDOW_IDS = ["cold-10s", "20x0.5s", "7x1.3s"]


# ------------------------------------------------- grid: the acked matrix
class TestAckedGridMatrix:
    """Classic vs heap-tier batched vs vectorized on the acked Grid."""

    @pytest.mark.parametrize("windows,step_s", WINDOWS, ids=WINDOW_IDS)
    def test_heap_tier_bit_exact(self, windows, step_s):
        _, classic = run_acked_windows(False, windows, step_s)
        _, batched = run_acked_windows(True, windows, step_s, batch_vectorize=False)
        assert log_digest(batched.log) == log_digest(classic.log)
        assert vars(batched.acker.stats) == vars(classic.acker.stats)
        assert replay_count(batched) == replay_count(classic)
        assert batched.acker.pending_count == classic.acker.pending_count

    @pytest.mark.parametrize("windows,step_s", WINDOWS, ids=WINDOW_IDS)
    def test_vectorized_modulo_ids(self, windows, step_s):
        _, classic = run_acked_windows(False, windows, step_s)
        expected = acked_fingerprint(classic)
        _, batched = run_acked_windows(True, windows, step_s)
        assert acked_fingerprint(batched) == expected
        # The cascade actually carried the run under acking.
        assert batched.batch_stepper.vector_cascades >= 1

    def test_windowed_run_reengages_every_window(self):
        # Early XOR zero-crossings leave completed-tree descendants in flight
        # at every window boundary; ingestion must adopt them and re-engage
        # rather than declining for the rest of the run.
        _, runtime = run_acked_windows(True, 20, 0.5)
        assert runtime.batch_stepper.vector_cascades >= 15

    def test_bulk_apis_absorbed_the_stream(self):
        _, runtime = run_acked_windows(True, 1, 10.0)
        stats = runtime.acker.stats
        assert stats.bulk_anchors > 0
        assert stats.bulk_acks > 0
        # Classic runs never touch the bulk counters.
        _, classic = run_acked_windows(False, 1, 10.0)
        assert classic.acker.stats.bulk_anchors == 0
        assert classic.acker.stats.bulk_acks == 0


# ------------------------------------------------------ grid: injected loss
class TestAckedInjectedLoss:
    """An explicit fail of a just-emitted root: one replay, every mode.

    The failed root is picked positionally (newest still-pending emission at
    the injection time) so all three modes lose the *same* tuple, whatever
    ids it carries; replay traffic then runs through the classic path (the
    scan declines replayed events) and the cascade re-engages after.
    """

    @staticmethod
    def run_with_fail(batch_stepping: bool, batch_vectorize: bool = True):
        sim, runtime = build_acked_grid(batch_stepping, batch_vectorize)
        injected = []

        def inject():
            for emit in reversed(runtime.log.source_emits):
                if runtime.acker.is_pending(emit.root_id):
                    runtime.acker.fail(emit.root_id)
                    injected.append(emit.time)
                    return

        # 10 ms after the emission tick at t=3.0: that tree is one hop into
        # the pipeline in every mode, so the positional pick cannot diverge.
        sim.schedule_at(3.01, inject)
        sim.run(until=10.0)
        return runtime, injected

    def test_replay_counts_identical_across_the_matrix(self):
        classic, lost_c = self.run_with_fail(False)
        heap, lost_h = self.run_with_fail(True, batch_vectorize=False)
        vector, lost_v = self.run_with_fail(True)
        assert lost_c == lost_h == lost_v == [3.0]
        assert replay_count(classic) > 0
        assert replay_count(heap) == replay_count(classic)
        assert replay_count(vector) == replay_count(classic)
        assert log_digest(heap.log) == log_digest(classic.log)
        assert vars(heap.acker.stats) == vars(classic.acker.stats)
        assert acked_fingerprint(vector) == acked_fingerprint(classic)
        # Disengaged around the loss window, re-engaged after.
        assert vector.batch_stepper.vector_cascades >= 2


# --------------------------------------------------------------- elastic run
class TestAckedElasticEquivalence:
    """Full DSM elastic run: migrations kill executors, losing in-flight
    messages (the paper's fig. 6 replay source).  The heap tier must ride
    through it bit-exactly — same digest, same acker statistics, same replay
    count — and the vectorized tier must make the same scaling decisions."""

    @staticmethod
    def run_elastic(batch_stepping: bool, batch_vectorize: bool = True):
        config = fast_config("dsm", seed=11)
        config.keyed_network_jitter = True
        config.batch_stepping = batch_stepping
        config.batch_vectorize = batch_vectorize
        return run_elastic_experiment(
            dag="traffic",
            strategy="dsm",
            profile=StepProfile(steps=[(0.0, 8.0), (60.0, 24.0), (140.0, 8.0)]),
            duration_s=220.0,
            seed=11,
            dataflow=topologies.traffic(latency_s=0.02),
            config=config,
            controller_config=ControllerConfig(
                check_interval_s=5.0, confirm_samples=2, cooldown_s=30.0
            ),
            provisioning_latency_s=2.0,
        )

    @staticmethod
    def actions_of(result):
        return [
            (a.direction, a.from_tier, a.to_tier, a.decided_at, a.enacted_at, a.completed_at)
            for a in result.actions
        ]

    @staticmethod
    def replays_of(result):
        return sum(1 for e in result.log.source_emits if e.replay_count > 0)

    def test_elastic_dsm_run_matches_classic(self):
        classic = self.run_elastic(False)
        assert self.actions_of(classic), "the surge must trigger scaling"
        assert self.replays_of(classic) > 0, "DSM migrations must replay"

        heap = self.run_elastic(True, batch_vectorize=False)
        assert self.actions_of(heap) == self.actions_of(classic)
        assert self.replays_of(heap) == self.replays_of(classic)
        assert log_digest(heap.log) == log_digest(classic.log)
        assert vars(heap.runtime.acker.stats) == vars(classic.runtime.acker.stats)

        vector = self.run_elastic(True)
        assert self.actions_of(vector) == self.actions_of(classic)
        # Which trees a migration kill catches pending depends on id-value
        # XOR accidents, so the vectorized replay count may differ by the
        # handful of trees classic completed early by collision.
        assert self.replays_of(vector) > 0
        assert vector.runtime.batch_stepper.vector_cascades > 0
