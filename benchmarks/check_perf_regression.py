#!/usr/bin/env python3
"""Gate: fail when an engine benchmark regresses vs. the committed baseline.

Compares ``results/BENCH_engine.json`` (written by running
``benchmarks/test_engine_performance.py``) against
``benchmarks/perf_baseline.json``.  A benchmark fails the gate when its mean
is more than ``--threshold`` (default 2.0) times the baseline mean — loose
enough to absorb machine-class differences between the baseline recorder and
CI runners, tight enough to catch a real hot-path regression.

Exit code 0 = all benchmarks within budget, 1 = regression, 2 = missing input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
DEFAULT_CURRENT = HERE.parent / "results" / "BENCH_engine.json"
DEFAULT_BASELINE = HERE / "perf_baseline.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", type=Path, default=DEFAULT_CURRENT,
                        help="BENCH_engine.json produced by the benchmark run")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when mean > threshold x baseline mean")
    args = parser.parse_args()

    if not args.current.exists():
        print(f"error: {args.current} not found — run the engine benchmarks first", file=sys.stderr)
        return 2
    if not args.baseline.exists():
        print(f"error: {args.baseline} not found", file=sys.stderr)
        return 2

    current = json.loads(args.current.read_text(encoding="utf-8"))["benchmarks"]
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))["benchmarks"]

    failures = []
    print(f"{'benchmark':32s} {'baseline':>12s} {'current':>12s} {'ratio':>8s}")
    for name in sorted(baseline):
        base_mean = baseline[name]["mean_s"]
        entry = current.get(name)
        if entry is None:
            print(f"{name:32s} {base_mean * 1e3:10.2f}ms {'MISSING':>12s} {'-':>8s}")
            failures.append(f"{name}: missing from current run")
            continue
        ratio = entry["mean_s"] / base_mean if base_mean else float("inf")
        flag = "  FAIL" if ratio > args.threshold else ""
        print(f"{name:32s} {base_mean * 1e3:10.2f}ms {entry['mean_s'] * 1e3:10.2f}ms {ratio:7.2f}x{flag}")
        if ratio > args.threshold:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline (threshold {args.threshold}x)")

    if failures:
        print("\nperformance regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall benchmarks within {args.threshold}x of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
