#!/usr/bin/env python3
"""Gate: fail when an engine benchmark regresses vs. the committed baseline.

Compares ``results/BENCH_engine.json`` (written by running
``benchmarks/test_engine_performance.py``) against
``benchmarks/perf_baseline.json``.  A benchmark fails the gate when its mean
is more than ``--threshold`` (default 2.0) times the baseline mean — loose
enough to absorb machine-class differences between the baseline recorder and
CI runners, tight enough to catch a real hot-path regression.

Three further checks ride along:

* **Throughput floors** — benchmarks listed in ``MIN_EVENTS_PER_SECOND`` must
  report at least that many ``events_per_second``.  Floors only apply when
  the benchmark run had the columnar numpy backend available (the
  ``columnar`` flag in BENCH_engine.json); without numpy the engine degrades
  to the classic log and absolute throughput is not a contract.
* **Peak RSS** (``--check-rss``) — runs the high-rate Grid workload twice in
  subprocesses, once on the columnar log and once on the classic
  pooled-object log, and fails when the columnar run's peak RSS exceeds the
  classic run's by more than ``--rss-tolerance``.  The columnar backend must
  not buy its speed with memory.  Skipped (with a notice) when numpy is
  unavailable.
* **Telemetry overhead** (``--check-telemetry-overhead``) — runs the Grid
  surge elastic scenario in paired subprocesses, telemetry off and on,
  interleaved on the same machine, and fails when the telemetry-on wall time
  exceeds the telemetry-off wall time by more than
  ``--telemetry-tolerance`` (default 5%).  The scrape-based design means the
  hot path allocates nothing for observability; this gate keeps it that way.

Exit code 0 = all checks within budget, 1 = regression, 2 = missing input.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
DEFAULT_CURRENT = HERE.parent / "results" / "BENCH_engine.json"
DEFAULT_BASELINE = HERE / "perf_baseline.json"

#: Absolute throughput contracts (events/s), enforced only on columnar runs.
#: The acked floor is deliberately lower than the unacked one: every tuple
#: tree adds register/anchor/ack bookkeeping the cascade folds in bulk.
MIN_EVENTS_PER_SECOND = {
    "grid_steady_state_columnar": 1_000_000.0,
    "grid_steady_state_acked": 1_000_000.0,
}

#: One round of the RSS probe workload: 60 s of the 100x-rate Grid.
_RSS_CHILD_CODE = """
import json, resource, sys
from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.vm import D2, D3
from repro.dataflow import topologies
from repro.engine.config import RuntimeConfig
from repro.engine.runtime import TopologyRuntime
from repro.sim import Simulator

columnar = sys.argv[1] == "columnar"
sim = Simulator()
provider = CloudProvider(sim)
cluster = Cluster()
util_vm = provider.provision(D3, 1, name_prefix="util")[0]
util_vm.tags["role"] = "util"
cluster.add_vm(util_vm)
for vm in provider.provision(D2, 11, name_prefix="w"):
    cluster.add_vm(vm)
config = RuntimeConfig(seed=7)
config.batch_stepping = True
config.columnar_log = columnar
runtime = TopologyRuntime(topologies.grid(rate=800.0, latency_s=0.001),
                          cluster, sim=sim, config=config)
runtime.deploy()
runtime.start()
sim.run(until=60.0)
print(json.dumps({
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "receipts": len(runtime.log.sink_receipts),
    "columnar": type(runtime.log).__name__,
}))
"""


#: One round of the telemetry-overhead probe: the Grid surge elastic run,
#: full control loop, telemetry off or on per the argv flag.
_TELEMETRY_CHILD_CODE = """
import json, sys, time
from repro.experiments.elastic import run_elastic_experiment

telemetry = sys.argv[1] == "on"
start = time.perf_counter()
result = run_elastic_experiment(
    dag="grid", strategy="ccr", profile="surge",
    duration_s=300.0, seed=2018, telemetry=telemetry,
)
elapsed = time.perf_counter() - start
print(json.dumps({
    "elapsed_s": elapsed,
    "receipts": len(result.log.sink_receipts),
    "telemetry": result.telemetry is not None,
}))
"""


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(HERE.parent / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _run_probe(code: str, mode: str) -> dict:
    out = subprocess.run(
        [sys.executable, "-c", code, mode],
        check=True, capture_output=True, text=True, env=_child_env(),
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _run_rss_probe(mode: str) -> dict:
    return _run_probe(_RSS_CHILD_CODE, mode)


def check_telemetry_overhead(tolerance: float, rounds: int = 3) -> list:
    """Telemetry-on wall time must stay within ``tolerance`` of telemetry-off.

    The probes are interleaved (off, on, off, on, ...) on the same machine
    and the best (minimum) time per mode is compared, so machine noise
    cancels instead of masquerading as overhead.
    """
    off_times, on_times = [], []
    off = on = None
    for _ in range(rounds):
        off = _run_probe(_TELEMETRY_CHILD_CODE, "off")
        on = _run_probe(_TELEMETRY_CHILD_CODE, "on")
        off_times.append(off["elapsed_s"])
        on_times.append(on["elapsed_s"])
    if off["receipts"] != on["receipts"] or on["telemetry"] is not True:
        return [f"telemetry probe: runs diverged "
                f"({on['receipts']} receipts with telemetry vs {off['receipts']} without)"]
    best_off, best_on = min(off_times), min(on_times)
    ratio = best_on / best_off
    print(f"\ntelemetry overhead (300 s Grid surge elastic run, best of {rounds}): "
          f"off {best_off:.3f}s, on {best_on:.3f}s ({ratio:.3f}x, "
          f"budget {1 + tolerance:.2f}x)")
    if ratio > 1.0 + tolerance:
        return [f"telemetry overhead: {ratio:.3f}x the telemetry-off wall time "
                f"(tolerance {1 + tolerance:.2f}x)"]
    return []


def check_rss(tolerance: float) -> list:
    """Columnar peak RSS must not exceed the pooled-object baseline's."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        print("\npeak-RSS check skipped: numpy unavailable, columnar backend inert")
        return []
    classic = _run_rss_probe("classic")
    columnar = _run_rss_probe("columnar")
    if columnar["columnar"] != "ColumnarEventLog":
        print("\npeak-RSS check skipped: columnar backend did not engage")
        return []
    ratio = columnar["peak_rss_kb"] / classic["peak_rss_kb"]
    print(f"\npeak RSS (60 s, 100x-rate Grid): classic {classic['peak_rss_kb']} KB, "
          f"columnar {columnar['peak_rss_kb']} KB ({ratio:.2f}x, "
          f"budget {1 + tolerance:.2f}x)")
    if columnar["receipts"] != classic["receipts"]:
        return [f"rss probe: receipt counts diverged "
                f"({columnar['receipts']} columnar vs {classic['receipts']} classic)"]
    if ratio > 1.0 + tolerance:
        return [f"peak RSS: columnar run used {ratio:.2f}x the classic pooled-object "
                f"memory (tolerance {1 + tolerance:.2f}x)"]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", type=Path, default=DEFAULT_CURRENT,
                        help="BENCH_engine.json produced by the benchmark run")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when mean > threshold x baseline mean")
    parser.add_argument("--check-rss", action="store_true",
                        help="also assert columnar peak RSS <= classic peak RSS")
    parser.add_argument("--rss-tolerance", type=float, default=0.10,
                        help="allowed relative RSS overhead for the columnar run")
    parser.add_argument("--check-telemetry-overhead", action="store_true",
                        dest="check_telemetry_overhead",
                        help="also assert a telemetry-on run stays within "
                             "--telemetry-tolerance of the telemetry-off wall time")
    parser.add_argument("--telemetry-tolerance", type=float, default=0.05,
                        help="allowed relative wall-time overhead with telemetry on")
    args = parser.parse_args()

    if not args.current.exists():
        print(f"error: {args.current} not found — run the engine benchmarks first", file=sys.stderr)
        return 2
    if not args.baseline.exists():
        print(f"error: {args.baseline} not found", file=sys.stderr)
        return 2

    payload = json.loads(args.current.read_text(encoding="utf-8"))
    current = payload["benchmarks"]
    columnar_run = bool(payload.get("columnar"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))["benchmarks"]

    failures = []
    print(f"{'benchmark':32s} {'baseline':>12s} {'current':>12s} {'ratio':>8s}")
    for name in sorted(baseline):
        base_mean = baseline[name]["mean_s"]
        entry = current.get(name)
        if entry is None:
            print(f"{name:32s} {base_mean * 1e3:10.2f}ms {'MISSING':>12s} {'-':>8s}")
            failures.append(f"{name}: missing from current run")
            continue
        ratio = entry["mean_s"] / base_mean if base_mean else float("inf")
        flag = "  FAIL" if ratio > args.threshold else ""
        print(f"{name:32s} {base_mean * 1e3:10.2f}ms {entry['mean_s'] * 1e3:10.2f}ms {ratio:7.2f}x{flag}")
        if ratio > args.threshold:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline (threshold {args.threshold}x)")

    if columnar_run:
        for name, floor in sorted(MIN_EVENTS_PER_SECOND.items()):
            entry = current.get(name)
            if entry is None:
                continue  # already reported as MISSING above
            evps = entry.get("events_per_second")
            if evps is None:
                failures.append(f"{name}: no events_per_second recorded (floor {floor:,.0f})")
            elif evps < floor:
                failures.append(f"{name}: {evps:,.0f} events/s below floor {floor:,.0f}")
            else:
                print(f"\n{name}: {evps:,.0f} events/s (floor {floor:,.0f})")
    else:
        print("\nthroughput floors skipped: benchmark run had no columnar backend")

    if args.check_rss:
        failures.extend(check_rss(args.rss_tolerance))

    if args.check_telemetry_overhead:
        failures.extend(check_telemetry_overhead(args.telemetry_tolerance))

    if failures:
        print("\nperformance regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall benchmarks within {args.threshold}x of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
