"""Benchmark / reproduction of the §5.1 rebalance-duration observation.

The paper: "the rebalance duration ... remains relatively constant across
dataflows, VM counts and strategies, with an average value of 7.26 secs."
"""

from __future__ import annotations

from repro.experiments.figures import PAPER_REBALANCE_DURATION_S, rebalance_duration_summary
from repro.experiments.formatting import format_table

from benchmarks.conftest import write_result


def _reproduce(matrix):
    return rebalance_duration_summary(matrix, scalings=("in", "out"))


def test_rebalance_duration(benchmark, matrix):
    summary = benchmark.pedantic(_reproduce, args=(matrix,), rounds=1, iterations=1)
    text = format_table(
        [summary],
        columns=["mean_s", "min_s", "max_s", "samples", "paper_mean_s"],
        title="Rebalance command duration across all experiments (reproduced vs paper)",
    )
    write_result("rebalance_duration", text)

    # The mean is close to the paper's 7.26 s and the spread is small
    # (constant across dataflows, VM counts and strategies).
    assert abs(summary["mean_s"] - PAPER_REBALANCE_DURATION_S) < 1.0
    assert summary["max_s"] - summary["min_s"] < 4.0
    assert summary["samples"] == 30
