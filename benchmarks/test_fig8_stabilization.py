"""Benchmark / reproduction of Fig. 8: rate stabilization times.

The paper defines stabilization as the output rate staying within 20 % of the
expected stable rate for 60 s.  Checked shape: DCR and CCR always stabilize
within the observation window, CCR no later than DSM, and DSM's stabilization
(when reached at all) is the largest, growing for the application DAGs.

Note: the reproduction's DSM stabilization times are systematically larger
than the paper's (see EXPERIMENTS.md) because the simulated per-instance
capacity cap makes the catch-up period strictly rate-limited; the ordering
between strategies is preserved.
"""

from __future__ import annotations

import pytest

from repro.dataflow.topologies import PAPER_ORDER
from repro.experiments.figures import figure8_rows
from repro.experiments.formatting import format_table

from benchmarks.conftest import write_result


def _reproduce(matrix, scaling):
    rows = figure8_rows(matrix, scaling)
    text = format_table(
        rows,
        columns=["dag", "strategy", "stabilization_s", "stabilization_paper_s"],
        title=f"Fig. 8 ({'a' if scaling == 'in' else 'b'}): rate stabilization time, scale-{scaling} (reproduced vs paper)",
    )
    write_result(f"fig8_scale_{scaling}", text)
    return rows


@pytest.mark.parametrize("scaling", ["in", "out"])
def test_fig8_stabilization(benchmark, matrix, scaling):
    rows = benchmark.pedantic(_reproduce, args=(matrix, scaling), rounds=1, iterations=1)
    cells = {(row["dag"], row["strategy"]): row["stabilization_s"] for row in rows}

    for dag in PAPER_ORDER:
        dcr = cells[(dag, "dcr")]
        ccr = cells[(dag, "ccr")]
        dsm = cells[(dag, "dsm")]
        # The proposed strategies always stabilize within the observation window.
        assert dcr is not None, dag
        assert ccr is not None, dag
        # CCR stabilizes no later than DCR (it pauses the source for a shorter
        # time, so there is less backlog to drain), modulo the lumpiness of the
        # 60 s in-band window detection.
        assert ccr <= dcr + 30.0, dag
        # DSM is the worst: either it has not stabilized within the window at
        # all, or it takes at least as long as CCR.
        assert dsm is None or dsm >= ccr - 10.0, dag

    # Aggregate ordering across the five dataflows: CCR <= DCR on average.
    dcr_mean = sum(cells[(dag, "dcr")] for dag in PAPER_ORDER) / len(PAPER_ORDER)
    ccr_mean = sum(cells[(dag, "ccr")] for dag in PAPER_ORDER) / len(PAPER_ORDER)
    assert ccr_mean <= dcr_mean + 5.0

    # Stabilization happens after the restore for every strategy that stabilized.
    for (dag, strategy), stabilization in cells.items():
        if stabilization is None:
            continue
        restore = matrix.cell(dag, strategy, scaling).metrics.restore_duration_s
        assert stabilization >= restore - 10.0, (dag, strategy)
