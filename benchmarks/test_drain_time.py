"""Benchmark / reproduction of the §5.1 drain/capture duration comparison.

The paper reports that DCR's drain time exceeds CCR's capture time (Grid
scale-in: 1875 ms vs 468 ms; Linear scale-in: 905 ms vs 256 ms) and that the
gap grows with the critical path length of the DAG -- demonstrated with a
50-task Linear DAG whose drain-time delta is about 4.3 s.
"""

from __future__ import annotations

from repro.experiments.figures import drain_time_rows
from repro.experiments.formatting import format_table

from benchmarks.conftest import write_result


def _reproduce():
    return drain_time_rows(migrate_at_s=60.0, post_migration_s=90.0, seed=2018)


def test_drain_time(benchmark):
    rows = benchmark.pedantic(_reproduce, rounds=1, iterations=1)
    text = format_table(
        rows,
        columns=["case", "dcr_drain_ms", "dcr_paper_ms", "ccr_capture_ms", "ccr_paper_ms", "delta_ms"],
        title="Drain (DCR) vs capture (CCR) duration in milliseconds (reproduced vs paper)",
    )
    write_result("drain_time", text)

    by_case = {row["case"]: row for row in rows}

    # DCR's drain always takes longer than CCR's capture.
    for case, row in by_case.items():
        assert row["dcr_drain_ms"] > row["ccr_capture_ms"], case

    # The drain/capture gap grows with the critical path: Grid (7 tasks deep)
    # has a larger delta than Linear (5 tasks deep), and the 50-task Linear DAG
    # has a much larger delta than both.
    assert by_case["grid scale-in"]["delta_ms"] > by_case["linear scale-in"]["delta_ms"]
    assert by_case["linear-50 scale-in"]["delta_ms"] > 3.0 * by_case["linear scale-in"]["delta_ms"]

    # Order-of-magnitude agreement with the paper: drains are hundreds of
    # milliseconds to a few seconds, captures are a fraction of the drain.
    for case, row in by_case.items():
        assert 50.0 <= row["dcr_drain_ms"] <= 10_000.0, case
        assert row["ccr_capture_ms"] <= row["dcr_drain_ms"], case
