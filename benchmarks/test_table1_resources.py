"""Benchmark / reproduction of Table 1: tasks, slots and VMs per dataflow."""

from __future__ import annotations

from repro.experiments.figures import table1_rows
from repro.experiments.formatting import format_table

from benchmarks.conftest import write_result


def test_table1_resources(benchmark):
    rows = benchmark(table1_rows)
    text = format_table(
        rows,
        columns=[
            "dag",
            "tasks",
            "tasks_paper",
            "instances",
            "instances_paper",
            "default_vms",
            "default_vms_paper",
            "scale_in_vms",
            "scale_in_vms_paper",
            "scale_out_vms",
            "scale_out_vms_paper",
        ],
        title="Table 1: tasks, task instances (slots) and VMs per dataflow (reproduced vs paper)",
    )
    write_result("table1_resources", text)

    # The reproduction must match Table 1 exactly: same task counts, instance
    # counts and VM footprints for every dataflow.
    for row in rows:
        assert row["tasks"] == row["tasks_paper"], row["dag"]
        assert row["instances"] == row["instances_paper"], row["dag"]
        assert row["default_vms"] == row["default_vms_paper"], row["dag"]
        assert row["scale_in_vms"] == row["scale_in_vms_paper"], row["dag"]
        assert row["scale_out_vms"] == row["scale_out_vms_paper"], row["dag"]
