"""Benchmark / reproduction of the §5.1 state-store micro-benchmark.

The paper: "micro-benchmarks show that it takes just 100 ms to checkpoint 2000
events to Redis from Storm."  This is the calibration target of the simulated
state store's latency model; the benchmark also measures the real wall-clock
cost of a simulated checkpoint write (the pytest-benchmark part).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import statestore_micro
from repro.experiments.formatting import format_table
from repro.reliability.statestore import StateStore
from repro.sim import Simulator

from benchmarks.conftest import write_result


def test_statestore_checkpoint_latency_model(benchmark):
    result = benchmark(statestore_micro, 2000)
    text = format_table(
        [result],
        columns=["events", "measured_ms", "paper_ms"],
        title="State-store micro-benchmark: checkpoint 2000 captured events (reproduced vs paper)",
    )
    write_result("statestore_micro", text)
    assert result["measured_ms"] == pytest.approx(result["paper_ms"], rel=0.25)


def test_statestore_simulated_write_throughput(benchmark):
    """Wall-clock cost of issuing checkpoint writes against the simulated store."""
    sim = Simulator()
    store = StateStore(sim)

    def write_batch():
        for i in range(100):
            store.put(f"bench/{i}", {"state": {"processed": i}, "pending": []}, 256)
        sim.run()

    benchmark(write_batch)
    assert store.stats.puts >= 100


def test_statestore_latency_scales_linearly(benchmark):
    """The latency model is linear in the number of captured events."""
    def measure():
        return {n: statestore_micro(n)["measured_ms"] for n in (500, 1000, 2000, 4000)}

    measured = benchmark(measure)
    assert measured[1000] == pytest.approx(2 * measured[500], rel=0.05)
    assert measured[4000] == pytest.approx(2 * measured[2000], rel=0.05)
