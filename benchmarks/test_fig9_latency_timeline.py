"""Benchmark / reproduction of Fig. 9: latency timeline for Grid scale-in.

The paper plots the average end-to-end latency over a moving 10 s window for
each strategy, with vertical markers at the metric boundaries (restore,
catchup, recovery, stabilization) and horizontal lines at the stable latency.
Checked shape:

* before the migration all strategies sit at the same stable latency
  (sub-second for the 100 ms / 7-task-deep Grid DAG);
* during/after the migration the windowed latency spikes (backlogged and
  replayed events arrive late);
* well after stabilization the latency returns to the stable level for the
  proposed strategies, and DSM returns later than CCR.
"""

from __future__ import annotations

from repro.experiments.figures import figure9_series
from repro.experiments.formatting import format_latency_series

from benchmarks.conftest import write_result


def _reproduce(matrix):
    return figure9_series(matrix, dag="grid", scaling="in", window_s=10.0)


def _values_between(points, start, end):
    return [p.latency_s for p in points if start <= p.time < end]


def test_fig9_latency_timeline(benchmark, matrix):
    series = benchmark.pedantic(_reproduce, args=(matrix,), rounds=1, iterations=1)

    lines = ["Fig. 9: average latency (10 s windows) during Grid scale-in (time relative to migration request)"]
    for strategy, data in series.items():
        lines.append(format_latency_series(strategy, data["latency"]))
        lines.append(f"  stable latency: {data['stable_latency_s'] * 1000.0:.0f} ms, boundaries: "
                     + ", ".join(f"{k}={v:.1f}s" for k, v in data["boundaries"].items() if v is not None))
    write_result("fig9_grid_scale_in_latency", "\n".join(lines))

    stable = {name: data["stable_latency_s"] for name, data in series.items()}
    for name, value in stable.items():
        # Stable latency is sub-second.  Grid's sink receives 24 ev/s over the
        # 7-task forecasting path (~0.7 s) and 8 ev/s over the 5-task alert
        # path (~0.5 s), so the weighted average sits around 0.65 s.
        assert 0.45 <= value <= 1.5, name

    for name, data in series.items():
        post = _values_between(data["latency"], 30.0, 240.0)
        assert post, name
        # The migration disturbs latency visibly: some window far exceeds the
        # stable level.
        assert max(post) > stable[name] * 1.5, name

    # Latency returns to (near) the stable level by the end of the run for the
    # proposed strategies.
    for name in ("dcr", "ccr"):
        tail = _values_between(series[name]["latency"], 350.0, 500.0)
        assert tail, name
        assert min(tail) < stable[name] * 1.6, name

    # CCR's latency disturbance ends no later than DSM's: compare the last
    # window that exceeds twice the stable latency.
    def last_disturbed(name):
        disturbed = [p.time for p in series[name]["latency"] if p.time > 0 and p.latency_s > 2.0 * stable[name]]
        return max(disturbed) if disturbed else 0.0

    assert last_disturbed("ccr") <= last_disturbed("dsm") + 15.0
