"""Benchmark / reproduction of Fig. 6: failed-and-replayed message counts for DSM.

The paper reports hundreds to ~2000 replayed messages for DSM (and none for
DCR/CCR), with the application DAGs (Grid, Traffic) replaying far more than
the micro DAGs because more in-flight events time out in larger DAGs.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure6_rows
from repro.experiments.formatting import format_table

from benchmarks.conftest import write_result


def _reproduce(matrix, scaling):
    rows = figure6_rows(matrix, scaling)
    text = format_table(
        rows,
        columns=["dag", "replayed_messages", "replayed_paper"],
        title=f"Fig. 6 ({'a' if scaling == 'in' else 'b'}): DSM replayed messages, scale-{scaling} (reproduced vs paper)",
    )
    write_result(f"fig6_scale_{scaling}", text)
    return rows


@pytest.mark.parametrize("scaling", ["in", "out"])
def test_fig6_replayed_messages(benchmark, matrix, scaling):
    rows = benchmark.pedantic(_reproduce, args=(matrix, scaling), rounds=1, iterations=1)
    counts = {row["dag"]: row["replayed_messages"] for row in rows}

    # DSM replays a substantial number of messages for every dataflow.
    for dag, count in counts.items():
        assert count > 50, dag

    # Application DAGs replay more than micro DAGs (more tasks and input
    # buffers mean more in-flight events are lost and timed out).
    micro_mean = (counts["linear"] + counts["diamond"] + counts["star"]) / 3.0
    app_mean = (counts["grid"] + counts["traffic"]) / 2.0
    assert app_mean > micro_mean

    # DCR and CCR replay nothing (checked from the same experiment matrix).
    for dag in counts:
        for strategy in ("dcr", "ccr"):
            cell = matrix.cell(dag, strategy, scaling)
            assert cell.metrics.replayed_message_count == 0, (dag, strategy)
