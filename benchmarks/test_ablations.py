"""Ablation benchmarks for the design choices behind DCR/CCR.

These are not figures from the paper; they isolate the individual mechanisms
the strategies rely on and quantify how much each contributes, using the Star
dataflow (scale-in) as the common workload:

* **INIT re-send interval** -- the paper's DCR/CCR re-send INIT every 1 s while
  DSM effectively waits for the 30 s ack timeout.  Sweeping the interval shows
  that the aggressive re-send is what decouples restore time from the ack
  timeout.
* **Broadcast vs sequential checkpoint channel** -- CCR's hub-and-spoke PREPARE
  is what removes the drain time; comparing CCR against DCR on a deep (50-task)
  linear DAG isolates that effect.
* **max.spout.pending flow control** -- the DSM baseline needs flow control to
  bound its replay storm; sweeping the cap shows the replay count growing with
  it.
"""

from __future__ import annotations

import pytest

from repro.cluster.cloud import CloudProvider
from repro.cluster.vm import D3
from repro.core import compute_migration_metrics, strategy_by_name
from repro.dataflow import topologies
from repro.experiments.formatting import format_table
from repro.experiments.scenarios import (
    ScenarioSpec,
    build_experiment,
    plan_after_scaling,
    provision_target_vms,
    run_migration_experiment,
)

from benchmarks.conftest import write_result


def _run_with_overrides(strategy_name, init_resend_interval_s=None, max_spout_pending=None,
                        dag="star", scaling="in", migrate_at=60.0, post=300.0, seed=2018):
    """Run one migration experiment with strategy/reliability overrides."""
    spec = ScenarioSpec(dag=dag, strategy=strategy_name, scaling=scaling,
                        migrate_at_s=migrate_at, post_migration_s=post, seed=seed)
    handle = build_experiment(spec)
    runtime = handle.runtime
    if max_spout_pending is not None:
        runtime.reliability.max_spout_pending = max_spout_pending
    handle.sim.run(until=migrate_at)
    target_ids = provision_target_vms(handle)
    plan = plan_after_scaling(runtime, target_ids)
    strategy_cls = strategy_by_name(strategy_name)
    kwargs = {}
    if init_resend_interval_s is not None:
        kwargs["init_resend_interval_s"] = init_resend_interval_s
    strategy = strategy_cls(runtime, **kwargs)
    report = strategy.migrate(plan)
    handle.sim.run(until=migrate_at + post)
    return compute_migration_metrics(
        runtime.log, report, expected_output_rate=handle.dataflow.output_rate(),
        dataflow_name=handle.dataflow.name, scenario=spec.scenario_name, end_time=handle.sim.now,
    )


def test_ablation_init_resend_interval(benchmark):
    """Restore time of DCR as a function of the INIT re-send interval."""

    def sweep():
        rows = []
        for interval in (0.5, 1.0, 5.0, 15.0, 30.0):
            metrics = _run_with_overrides("dcr", init_resend_interval_s=interval)
            rows.append({"init_resend_interval_s": interval, "restore_s": metrics.restore_duration_s})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("ablation_init_resend", format_table(
        rows, title="Ablation: DCR restore time vs INIT re-send interval (Star, scale-in)"
    ))
    by_interval = {row["init_resend_interval_s"]: row["restore_s"] for row in rows}
    # Aggressive re-sends (the paper's 1 s) restore no later than lazy ones,
    # and the 30 s interval (DSM's effective behaviour) is clearly worse.
    assert by_interval[1.0] <= by_interval[15.0] + 1.0
    assert by_interval[1.0] <= by_interval[30.0] + 1.0
    assert by_interval[30.0] >= by_interval[1.0]
    # Restore keeps improving (or stays flat) as the interval shrinks.
    assert by_interval[0.5] <= by_interval[30.0]


def test_ablation_broadcast_vs_sequential_on_deep_dag(benchmark):
    """CCR's broadcast capture removes the depth-proportional drain of DCR."""

    def compare():
        dataflow_factory = lambda: topologies.linear(30)
        results = {}
        for strategy in ("dcr", "ccr"):
            result = run_migration_experiment(
                dag="linear-30", strategy=strategy, scaling="in",
                migrate_at_s=60.0, post_migration_s=120.0, seed=2018,
                dataflow=dataflow_factory(),
            )
            results[strategy] = result.metrics
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        {"strategy": name, "drain_capture_ms": metrics.drain_capture_duration_s * 1000.0}
        for name, metrics in results.items()
    ]
    write_result("ablation_broadcast_vs_sequential", format_table(
        rows, title="Ablation: drain/capture duration on a 30-task linear DAG"
    ))
    # The sequential drain grows with DAG depth (30 tasks x 100 ms floor),
    # while the broadcast capture only waits for local queues.
    assert results["dcr"].drain_capture_duration_s > 2.0
    assert results["ccr"].drain_capture_duration_s < 1.0


def test_ablation_max_spout_pending(benchmark):
    """DSM's replay count and catch-up burden grow with the flow-control cap."""

    def sweep():
        rows = []
        for cap in (32, 96, 192):
            metrics = _run_with_overrides("dsm", max_spout_pending=cap, post=300.0)
            rows.append({
                "max_spout_pending": cap,
                "replayed_messages": metrics.replayed_message_count,
                "restore_s": metrics.restore_duration_s,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("ablation_max_spout_pending", format_table(
        rows, title="Ablation: DSM replay count vs max.spout.pending (Star, scale-in)"
    ))
    by_cap = {row["max_spout_pending"]: row for row in rows}
    assert by_cap[96]["replayed_messages"] >= by_cap[32]["replayed_messages"]
    assert by_cap[192]["replayed_messages"] >= by_cap[96]["replayed_messages"]
    # Every configuration still replays a substantial number of messages.
    assert all(row["replayed_messages"] > 30 for row in rows)
