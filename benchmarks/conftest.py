"""Shared fixtures for the benchmark harness.

The heavy experiment matrix (5 dataflows x 3 strategies x 2 scaling
directions) is computed lazily and shared across every benchmark module in the
session, so Figures 5, 6 and 8 reuse the same runs exactly as the paper does.

Every benchmark writes its reproduced table/series to ``results/`` (next to
the repository root) in addition to printing it, so the reproduction output
survives pytest's output capturing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import ExperimentMatrix

#: Directory where reproduced tables and series are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_result(name: str, text: str) -> Path:
    """Write a reproduced table to ``results/<name>.txt`` and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def matrix() -> ExperimentMatrix:
    """The shared (dag x strategy x scaling) experiment matrix.

    Set ``REPRO_BENCH_FAST=1`` to shorten the post-migration observation
    window (useful for smoke runs; stabilization/recovery of DSM may then be
    reported as not-reached).
    """
    fast = os.environ.get("REPRO_BENCH_FAST", "0") == "1"
    post = 240.0 if fast else 540.0
    return ExperimentMatrix(migrate_at_s=90.0, post_migration_s=post, seed=2018)
