"""Shared fixtures for the benchmark harness.

The heavy experiment matrix (5 dataflows x 3 strategies x 2 scaling
directions) is computed lazily and shared across every benchmark module in the
session, so Figures 5, 6 and 8 reuse the same runs exactly as the paper does.

Every benchmark writes its reproduced table/series to ``results/`` (next to
the repository root) in addition to printing it, so the reproduction output
survives pytest's output capturing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.experiments.figures import ExperimentMatrix

#: Directory where reproduced tables and series are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Committed seed-era engine benchmark numbers (see test_engine_performance.py).
PERF_BASELINE_PATH = Path(__file__).resolve().parent / "perf_baseline.json"

#: Machine-readable engine benchmark output, written at session end.
BENCH_ENGINE_PATH = RESULTS_DIR / "BENCH_engine.json"

#: Session-wide collector: benchmark name -> {"mean_s": ..., "stddev_s": ..., "rounds": ...}.
_ENGINE_BENCH_RESULTS: Dict[str, Dict[str, float]] = {}


def record_engine_bench(name: str, benchmark, events: Optional[int] = None) -> None:
    """Register one engine benchmark's timing stats for ``BENCH_engine.json``.

    Called by every test in ``test_engine_performance.py`` after the
    ``benchmark`` fixture has run; reads the mean/stddev pytest-benchmark
    computed so the JSON mirrors the human-readable table exactly.

    ``events`` is the number of simulated/processed events one round of the
    benchmark works through; when given, the entry carries an
    ``events_per_second`` throughput figure (``events / mean_s``) so absolute
    engine throughput is tracked alongside the relative speedups.
    """
    stats = getattr(benchmark, "stats", None)
    inner = getattr(stats, "stats", None) or stats
    if inner is None:  # --benchmark-disable: nothing to record
        return
    entry = {
        "mean_s": float(inner.mean),
        "stddev_s": float(inner.stddev),
        "rounds": int(getattr(inner, "rounds", 0) or len(getattr(inner, "data", []) or [])),
    }
    if events is not None and inner.mean:
        entry["events"] = int(events)
        entry["events_per_second"] = round(events / float(inner.mean), 1)
    _ENGINE_BENCH_RESULTS[name] = entry


def _load_perf_baseline() -> Dict[str, Dict[str, float]]:
    if not PERF_BASELINE_PATH.exists():
        return {}
    data = json.loads(PERF_BASELINE_PATH.read_text(encoding="utf-8"))
    return data.get("benchmarks", {})


def write_bench_engine_json() -> Path:
    """Write ``results/BENCH_engine.json`` from the collected benchmark stats.

    Every benchmark entry carries its own mean/stddev plus, when the committed
    seed baseline knows the benchmark, the baseline mean and the speedup
    against it — the perf trajectory future PRs compare against.
    """
    baseline = _load_perf_baseline()
    benchmarks = {}
    for name, stats in sorted(_ENGINE_BENCH_RESULTS.items()):
        entry = dict(stats)
        base = baseline.get(name)
        if base and base.get("mean_s"):
            entry["baseline_mean_s"] = base["mean_s"]
            entry["speedup_vs_seed"] = round(base["mean_s"] / stats["mean_s"], 3)
        benchmarks[name] = entry
    try:  # whether the columnar numpy log backend was live during this run —
        from repro.metrics.log import HAVE_COLUMNAR  # the gate's throughput
    except Exception:  # floors only apply when it was
        HAVE_COLUMNAR = False
    from repro.metrics.metadata import run_metadata

    payload = run_metadata(
        "repro-bench-engine/1",
        columnar=bool(HAVE_COLUMNAR),
        benchmarks=benchmarks,
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    BENCH_ENGINE_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return BENCH_ENGINE_PATH


@pytest.fixture()
def engine_bench_recorder():
    """The ``record_engine_bench`` callable, as a fixture.

    Tests must use this fixture rather than importing the function: pytest
    loads this conftest as a plugin under its own module name, so a direct
    ``from benchmarks.conftest import ...`` would populate a *second* module
    instance whose collector the session-finish hook never sees.
    """
    return record_engine_bench


def pytest_sessionfinish(session, exitstatus):
    """Persist the engine benchmark trajectory once the session is over."""
    if _ENGINE_BENCH_RESULTS:
        path = write_bench_engine_json()
        print(f"\n[engine benchmarks written to {path}]")


def write_result(name: str, text: str) -> Path:
    """Write a reproduced table to ``results/<name>.txt`` and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def matrix() -> ExperimentMatrix:
    """The shared (dag x strategy x scaling) experiment matrix.

    Set ``REPRO_BENCH_FAST=1`` to shorten the post-migration observation
    window (useful for smoke runs; stabilization/recovery of DSM may then be
    reported as not-reached).
    """
    fast = os.environ.get("REPRO_BENCH_FAST", "0") == "1"
    post = 240.0 if fast else 540.0
    shared = ExperimentMatrix(migrate_at_s=90.0, post_migration_s=post, seed=2018)
    # Parallel prefetch: cells are hermetic, so the whole matrix fans out
    # across processes with bit-identical figure output.  Default: one worker
    # per core whenever the machine has more than one (a full benchmark
    # session reads every cell anyway, so prefetching all 30 is never wasted
    # work there).  REPRO_BENCH_JOBS overrides: 0 = one worker per core,
    # 1 = serial in-process computation, N>1 = exactly N workers.
    raw = os.environ.get("REPRO_BENCH_JOBS")
    try:
        jobs: Optional[int] = int(raw) if raw is not None else None
    except ValueError:
        jobs = None  # invalid value = auto, mirroring REPRO_SIM_SHARDS
    if jobs is not None:
        if jobs > 1:
            shared.prefetch(processes=jobs)
        elif jobs != 1:  # 0 or negative: explicit auto, one worker per core
            shared.prefetch(processes=None)
    elif (os.cpu_count() or 1) > 1:
        shared.prefetch(processes=None)
    return shared
