#!/usr/bin/env python3
"""Accumulate per-run engine benchmark results into a trend artifact.

Appends the current ``results/BENCH_engine.json`` (written by
``benchmarks/test_engine_performance.py``) as one entry of
``results/BENCH_trend.json``, a list ordered oldest-first.  Each entry keeps
the per-benchmark means plus enough context (commit, branch, timestamp,
machine) to chart the perf trajectory across PRs — the 2x CI gate only
catches cliffs; the trend file is the substrate for spotting slow drift.

When ``results/BENCH_predictive.json`` exists (written by the CI ``repro
predict --json`` smoke run), its headline numbers — per-policy SLO-violation
seconds, riding the ``mean_s`` field — are folded into the same entry, so
the trend chart tracks the control plane's SLO behaviour across PRs next to
the engine timings.  ``results/BENCH_chaos.json`` (written by the ``repro
chaos --json`` smoke run) is folded in the same way: per-mode restore
latency, replay count and cloud bill under the eviction storm, so recovery
regressions show up as >20% drift warnings like any benchmark.

In CI the ``engine-benchmarks`` job restores the previous trend file from
the actions cache (``bench-trend-*`` prefix restore), runs this script right
after the regression gate, saves the grown file back to the cache under a
run-scoped key, and uploads it as an artifact — so the history genuinely
accumulates across runs.  Locally it simply grows the file in place,
building a machine-local history.

Exit code 0 = appended, 2 = missing input.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
DEFAULT_CURRENT = HERE.parent / "results" / "BENCH_engine.json"
DEFAULT_PREDICTIVE = HERE.parent / "results" / "BENCH_predictive.json"
DEFAULT_CHAOS = HERE.parent / "results" / "BENCH_chaos.json"
DEFAULT_TREND = HERE.parent / "results" / "BENCH_trend.json"

#: Cap so a long-lived local history cannot grow without bound.
MAX_ENTRIES = 500


def _git(*args: str) -> str:
    try:
        return subprocess.run(
            ["git", *args], cwd=HERE.parent, capture_output=True, text=True, timeout=10
        ).stdout.strip()
    except OSError:
        return ""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", type=Path, default=DEFAULT_CURRENT,
                        help="BENCH_engine.json produced by the benchmark run")
    parser.add_argument("--predictive", type=Path, default=DEFAULT_PREDICTIVE,
                        help="BENCH_predictive.json produced by the 'repro predict --json' "
                             "smoke run (merged when present)")
    parser.add_argument("--chaos", type=Path, default=DEFAULT_CHAOS,
                        help="BENCH_chaos.json produced by the 'repro chaos --json' "
                             "smoke run (merged when present)")
    parser.add_argument("--trend", type=Path, default=DEFAULT_TREND,
                        help="trend JSON to append to (created if absent)")
    args = parser.parse_args()

    if not args.current.exists():
        print(f"error: {args.current} not found — run the engine benchmarks first",
              file=sys.stderr)
        return 2

    current = json.loads(args.current.read_text(encoding="utf-8"))
    benchmarks = {
        name: {"mean_s": stats["mean_s"], "stddev_s": stats.get("stddev_s")}
        for name, stats in current.get("benchmarks", {}).items()
    }
    for label, extra_path in (("predictive", args.predictive), ("chaos", args.chaos)):
        if not extra_path.exists():
            continue
        try:
            extra = json.loads(extra_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            print(f"warning: {extra_path} was unreadable; skipping {label} numbers",
                  file=sys.stderr)
            continue
        for name, stats in extra.get("benchmarks", {}).items():
            if isinstance(stats, dict) and "mean_s" in stats:
                benchmarks[name] = {"mean_s": stats["mean_s"], "stddev_s": stats.get("stddev_s")}
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": os.environ.get("GITHUB_SHA") or _git("rev-parse", "HEAD") or None,
        "branch": os.environ.get("GITHUB_REF_NAME") or _git("rev-parse", "--abbrev-ref", "HEAD") or None,
        "python": current.get("python"),
        "machine": current.get("machine"),
        "benchmarks": benchmarks,
    }

    trend = []
    if args.trend.exists():
        try:
            trend = json.loads(args.trend.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            print(f"warning: {args.trend} was unreadable; starting a fresh trend",
                  file=sys.stderr)
    if not isinstance(trend, list):
        trend = []
    trend.append(entry)
    trend = trend[-MAX_ENTRIES:]

    args.trend.parent.mkdir(parents=True, exist_ok=True)
    args.trend.write_text(json.dumps(trend, indent=2) + "\n", encoding="utf-8")
    print(f"appended entry #{len(trend)} ({entry['commit'] or 'no commit'}) to {args.trend}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
