#!/usr/bin/env python3
"""Chart the engine-benchmark trend and warn on slow cumulative drift.

Reads ``results/BENCH_trend.json`` (grown one entry per run by
``benchmarks/accumulate_trend.py``) and renders ``results/BENCH_trend.svg``:
one indexed line per benchmark, every run's mean normalized to that
benchmark's *first* recorded mean, so drift is read directly off a common
1.0 baseline (two measures of different absolute scale never share an axis
otherwise).

The CI regression gate (``check_perf_regression.py``) only catches >2x
cliffs against the committed baseline; this script closes the gap for slow
drift: any benchmark whose latest mean has crept more than ``--threshold``
(default 20%) above its first trend entry gets a warning — emitted as a
GitHub Actions ``::warning::`` annotation when running in CI, plain text
otherwise.  Exit code stays 0 unless ``--fail-on-drift`` is passed (the
artifact is a tripwire, not a gate).

The chart is a static SVG artifact (no script, renders anywhere GitHub
shows artifacts).  Colors are the validated default categorical palette
(slots in fixed order, light surface); series identity is carried by the
legend *and* direct end-of-line labels, never by color alone.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

HERE = Path(__file__).resolve().parent
DEFAULT_TREND = HERE.parent / "results" / "BENCH_trend.json"
DEFAULT_SVG = HERE.parent / "results" / "BENCH_trend.svg"

#: Validated categorical palette (light mode), fixed slot order — the order is
#: the colorblind-safety mechanism, so series are assigned in sequence, never
#: cycled or re-sorted.
PALETTE = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4", "#008300", "#4a3aa7", "#e34948"]
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e4e3df"

WIDTH, HEIGHT = 960, 420
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 64, 250, 56, 44


def load_trend(path: Path) -> List[dict]:
    """Load the trend entries (oldest first); [] when absent/unreadable."""
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return []
    return data if isinstance(data, list) else []


def indexed_series(trend: List[dict]) -> Dict[str, List[Optional[float]]]:
    """Per-benchmark relative means (first recorded mean = 1.0), one per entry.

    A benchmark missing from some entry contributes ``None`` there (gap in
    the line), so renamed or newly added benchmarks never shift the others.
    """
    names: List[str] = []
    for entry in trend:
        for name in entry.get("benchmarks", {}):
            if name not in names:
                names.append(name)
    series: Dict[str, List[Optional[float]]] = {}
    for name in names:
        base: Optional[float] = None
        values: List[Optional[float]] = []
        for entry in trend:
            stats = entry.get("benchmarks", {}).get(name)
            mean = stats.get("mean_s") if stats else None
            if mean is None or mean <= 0:
                values.append(None)
                continue
            if base is None:
                base = mean
            values.append(mean / base)
        series[name] = values
    return series


def drift_report(series: Dict[str, List[Optional[float]]], threshold: float) -> List[Tuple[str, float]]:
    """Benchmarks whose latest relative mean exceeds ``1 + threshold``."""
    drifted = []
    for name, values in series.items():
        present = [v for v in values if v is not None]
        if len(present) >= 2 and present[-1] > 1.0 + threshold:
            drifted.append((name, present[-1]))
    return sorted(drifted, key=lambda item: -item[1])


def _polyline(values: List[Optional[float]], x_of, y_of) -> List[str]:
    """SVG path fragments for a series, split at gaps."""
    paths: List[str] = []
    run: List[str] = []
    for i, value in enumerate(values):
        if value is None:
            if len(run) > 1:
                paths.append("M" + " L".join(run))
            run = []
            continue
        run.append(f"{x_of(i):.1f},{y_of(value):.1f}")
    if len(run) > 1:
        paths.append("M" + " L".join(run))
    elif len(run) == 1:
        paths.append("M" + run[0] + " L" + run[0])  # single point: dot-length stroke
    return paths


def render_svg(series: Dict[str, List[Optional[float]]], threshold: float, runs: int) -> str:
    """Render the indexed trend chart as a standalone SVG document."""
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B
    finite = [v for values in series.values() for v in values if v is not None]
    y_max = max(1.0 + threshold, max(finite, default=1.0)) * 1.08
    y_min = min(1.0, min(finite, default=1.0)) * 0.92
    x_max = max(1, runs - 1)

    def x_of(i: int) -> float:
        return MARGIN_L + plot_w * (i / x_max)

    def y_of(v: float) -> float:
        return MARGIN_T + plot_h * (1.0 - (v - y_min) / (y_max - y_min))

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" '
        f'viewBox="0 0 {WIDTH} {HEIGHT}" font-family="system-ui, sans-serif">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="{SURFACE}"/>',
        f'<text x="{MARGIN_L}" y="24" font-size="15" font-weight="600" fill="{TEXT_PRIMARY}">'
        f'Engine benchmark trend</text>',
        f'<text x="{MARGIN_L}" y="42" font-size="12" fill="{TEXT_SECONDARY}">'
        f'mean runtime per run, indexed to each benchmark’s first entry (1.0 = no change; '
        f'{runs} runs)</text>',
    ]

    # Recessive horizontal grid at sensible relative steps.
    step = 0.1 if y_max - y_min <= 0.8 else 0.25
    tick = round(y_min / step) * step
    while tick <= y_max:
        if y_min <= tick <= y_max:
            y = y_of(tick)
            parts.append(f'<line x1="{MARGIN_L}" y1="{y:.1f}" x2="{MARGIN_L + plot_w}" '
                         f'y2="{y:.1f}" stroke="{GRID}" stroke-width="1"/>')
            parts.append(f'<text x="{MARGIN_L - 8}" y="{y + 4:.1f}" font-size="11" '
                         f'text-anchor="end" fill="{TEXT_SECONDARY}">{tick:.2f}x</text>')
        tick = round(tick + step, 10)

    # The drift threshold, as a dashed reference line.
    y_thr = y_of(1.0 + threshold)
    parts.append(f'<line x1="{MARGIN_L}" y1="{y_thr:.1f}" x2="{MARGIN_L + plot_w}" y2="{y_thr:.1f}" '
                 f'stroke="{TEXT_SECONDARY}" stroke-width="1" stroke-dasharray="5 4"/>')
    parts.append(f'<text x="{MARGIN_L + plot_w}" y="{y_thr - 5:.1f}" font-size="11" '
                 f'text-anchor="end" fill="{TEXT_SECONDARY}">drift threshold '
                 f'{1.0 + threshold:.1f}x</text>')

    # Series lines (2px) with direct end labels; legend swatches on the right.
    legend_y = MARGIN_T + 8
    for index, (name, values) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        for path in _polyline(values, x_of, y_of):
            parts.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2" '
                         f'stroke-linecap="round" stroke-linejoin="round"/>')
        parts.append(f'<rect x="{MARGIN_L + plot_w + 16}" y="{legend_y - 9}" width="10" '
                     f'height="10" rx="2" fill="{color}"/>')
        last = next((v for v in reversed(values) if v is not None), None)
        label = f"{name} ({last:.2f}x)" if last is not None else name
        parts.append(f'<text x="{MARGIN_L + plot_w + 32}" y="{legend_y}" font-size="11" '
                     f'fill="{TEXT_PRIMARY}">{label}</text>')
        legend_y += 18

    # X axis: run index, first/last labeled.
    axis_y = MARGIN_T + plot_h
    parts.append(f'<line x1="{MARGIN_L}" y1="{axis_y}" x2="{MARGIN_L + plot_w}" y2="{axis_y}" '
                 f'stroke="{TEXT_SECONDARY}" stroke-width="1"/>')
    parts.append(f'<text x="{MARGIN_L}" y="{axis_y + 18}" font-size="11" '
                 f'fill="{TEXT_SECONDARY}">run 1</text>')
    parts.append(f'<text x="{MARGIN_L + plot_w}" y="{axis_y + 18}" font-size="11" '
                 f'text-anchor="end" fill="{TEXT_SECONDARY}">run {runs}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trend", type=Path, default=DEFAULT_TREND,
                        help="trend JSON produced by accumulate_trend.py")
    parser.add_argument("--svg", type=Path, default=DEFAULT_SVG,
                        help="output SVG path")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="cumulative drift fraction that triggers a warning (0.20 = +20%%)")
    parser.add_argument("--fail-on-drift", action="store_true",
                        help="exit 1 when any benchmark exceeds the threshold")
    args = parser.parse_args()

    trend = load_trend(args.trend)
    if not trend:
        print(f"chart_trend: no trend data at {args.trend}; nothing to chart")
        return 0

    series = indexed_series(trend)
    svg = render_svg(series, args.threshold, runs=len(trend))
    args.svg.parent.mkdir(parents=True, exist_ok=True)
    args.svg.write_text(svg, encoding="utf-8")
    print(f"chart_trend: wrote {args.svg} ({len(series)} benchmarks, {len(trend)} runs)")

    drifted = drift_report(series, args.threshold)
    in_ci = bool(os.environ.get("GITHUB_ACTIONS"))
    for name, relative in drifted:
        message = (f"benchmark '{name}' has drifted to {relative:.2f}x its first trend entry "
                   f"(threshold {1.0 + args.threshold:.2f}x) — slow regression creep")
        print(f"::warning title=Benchmark drift::{message}" if in_ci else f"WARNING: {message}")
    if drifted and args.fail_on_drift:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
