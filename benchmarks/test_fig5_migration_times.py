"""Benchmark / reproduction of Fig. 5: restore, catchup and recovery times.

Fig. 5a covers scale-in, Fig. 5b scale-out; each stacked bar gives the restore,
catchup and recovery durations for DSM / DCR / CCR on the five dataflows.  The
paper's headline claims checked here:

* CCR and DCR restore the dataflow much faster than DSM for every dataflow;
* DSM's restore time grows with the DAG size and exhibits ~30 s quantisation
  (INIT re-sends after ack timeouts);
* the proposed strategies migrate every dataflow within ~50 s, while DSM takes
  well over that for the large DAGs.
"""

from __future__ import annotations

import pytest

from repro.dataflow.topologies import PAPER_ORDER
from repro.experiments.figures import figure5_rows
from repro.experiments.formatting import format_table

from benchmarks.conftest import write_result


def _reproduce(matrix, scaling):
    rows = figure5_rows(matrix, scaling)
    text = format_table(
        rows,
        columns=[
            "dag",
            "strategy",
            "restore_s",
            "restore_paper_s",
            "catchup_s",
            "catchup_paper_s",
            "recovery_s",
            "recovery_paper_s",
        ],
        title=f"Fig. 5 ({'a' if scaling == 'in' else 'b'}): migration times, scale-{scaling} (reproduced vs paper)",
    )
    write_result(f"fig5_scale_{scaling}", text)
    return rows


def _by_cell(rows):
    return {(row["dag"], row["strategy"]): row for row in rows}


@pytest.mark.parametrize("scaling", ["in", "out"])
def test_fig5_migration_times(benchmark, matrix, scaling):
    rows = benchmark.pedantic(_reproduce, args=(matrix, scaling), rounds=1, iterations=1)
    cells = _by_cell(rows)

    for dag in PAPER_ORDER:
        dsm = cells[(dag, "dsm")]["restore_s"]
        dcr = cells[(dag, "dcr")]["restore_s"]
        ccr = cells[(dag, "ccr")]["restore_s"]
        assert dsm is not None and dcr is not None and ccr is not None
        # DSM is always the slowest to restore, by a wide margin.
        assert dsm > dcr, dag
        assert dsm > ccr, dag
        # The proposed strategies restore within ~50 s (paper's headline claim).
        assert dcr < 55.0, dag
        assert ccr < 55.0, dag
        # DSM pays at least one 30 s INIT re-send wave.
        assert dsm > 35.0, dag

    # DSM restore grows with DAG size: the largest DAG (Grid, 21 instances) is
    # slower to restore than the smallest micro DAG (Linear, 5 instances).
    assert cells[("grid", "dsm")]["restore_s"] >= cells[("linear", "dsm")]["restore_s"]

    # Recovery time exists only for DSM (DCR/CCR lose no messages).
    for dag in PAPER_ORDER:
        assert cells[(dag, "dcr")]["recovery_s"] is None
        assert cells[(dag, "ccr")]["recovery_s"] is None
        assert cells[(dag, "dsm")]["recovery_s"] is not None

    # Catchup does not apply to DCR (the dataflow is drained before migration).
    for dag in PAPER_ORDER:
        assert cells[(dag, "dcr")]["catchup_s"] is None
