"""Engine performance benchmarks (not a paper figure).

These measure the wall-clock cost of the simulation substrate itself: the
event-loop throughput of the kernel and the cost of simulating one second of
the Grid dataflow.  They guard against performance regressions that would make
the full experiment matrix impractically slow.
"""

from __future__ import annotations

from repro.dataflow import topologies
from repro.sim import Simulator

from tests.conftest import build_cluster, fast_config
from repro.engine.runtime import TopologyRuntime


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run throughput of the discrete-event kernel."""

    def run_10k_events():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()
        return sim.processed_events

    processed = benchmark(run_10k_events)
    assert processed == 10_000


def test_grid_steady_state_simulation_cost(benchmark):
    """Wall-clock cost of simulating 10 s of the Grid dataflow in steady state."""

    def simulate():
        sim = Simulator()
        cluster = build_cluster(sim, worker_vms=11)
        runtime = TopologyRuntime(topologies.grid(), cluster, sim=sim, config=fast_config("dcr"))
        runtime.deploy()
        runtime.start()
        sim.run(until=10.0)
        return len(runtime.log.sink_receipts)

    receipts = benchmark.pedantic(simulate, rounds=3, iterations=1)
    # 32 ev/s for ~10 s minus pipeline fill.
    assert receipts > 200
