"""Engine performance benchmark suite (not a paper figure).

These measure the wall-clock cost of the simulation substrate itself across
its four hot layers:

* the **kernel** event loop (plain timers and the fire-and-forget fast path),
* **routing fan-out** (grouping selection, per-channel FIFO, batched
  same-channel deliveries),
* **event-log queries** (the bisect-indexed windows metrics and monitors use),
* the end-to-end **Grid steady state** (the paper's dominant workload).

Every benchmark registers its mean/stddev with the session collector in
``benchmarks/conftest.py``, which writes ``results/BENCH_engine.json``
including the speedup against the committed seed baseline
(``benchmarks/perf_baseline.json``).  They guard against performance
regressions that would make the full experiment matrix impractically slow.
"""

from __future__ import annotations

from repro.dataflow import topologies
from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.event import Event
from repro.dataflow.grouping import Grouping
from repro.metrics.log import EventLog
from repro.metrics.timeline import latency_timeline, rate_timeline
from repro.sim import Simulator

from tests.conftest import build_cluster, fast_config
from repro.engine.config import ReliabilityConfig
from repro.engine.runtime import TopologyRuntime


#: Fixed round plan for the kernel microbenchmarks.  Auto-calibration let the
#: round count float with machine noise and produced ~35% relative stddev on
#: the 2.5 ms kernel loop, which made the 2x regression gate flap; a warmup
#: round plus a fixed floor of rounds keeps the allocator/bytecode caches hot
#: and the variance low without changing what is measured.
KERNEL_ROUNDS = 30
KERNEL_WARMUP_ROUNDS = 5


def test_kernel_event_throughput(benchmark, engine_bench_recorder):
    """Schedule-and-run throughput of the discrete-event kernel (Timer path)."""

    def run_10k_events():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()
        return sim.processed_events

    processed = benchmark.pedantic(
        run_10k_events, rounds=KERNEL_ROUNDS, iterations=1,
        warmup_rounds=KERNEL_WARMUP_ROUNDS,
    )
    assert processed == 10_000
    engine_bench_recorder("kernel_event_throughput", benchmark, events=10_000)


def test_kernel_fast_path_throughput(benchmark, engine_bench_recorder):
    """Throughput of the fire-and-forget scheduling fast path (no Timer handles).

    Falls back to the Timer path when the kernel predates ``schedule_fast``,
    so the committed seed baseline records the cost of the old path for the
    same workload.
    """

    def run_10k_events():
        sim = Simulator()
        schedule_fast = getattr(sim, "schedule_fast", None)
        if schedule_fast is not None:
            for i in range(10_000):
                schedule_fast(i * 0.001, _noop)
        else:  # seed kernel
            for i in range(10_000):
                sim.schedule(i * 0.001, _noop)
        sim.run()
        return sim.processed_events

    processed = benchmark.pedantic(
        run_10k_events, rounds=KERNEL_ROUNDS, iterations=1,
        warmup_rounds=KERNEL_WARMUP_ROUNDS,
    )
    assert processed == 10_000
    engine_bench_recorder("kernel_fast_path_throughput", benchmark, events=10_000)


def _noop() -> None:
    return None


def _fanout_runtime() -> TopologyRuntime:
    """A deployed two-stage fan-out topology for routing benchmarks."""
    builder = TopologyBuilder("fanout")
    builder.add_source("source", rate=1.0)
    builder.add_task("up", parallelism=1, latency_s=0.001)
    builder.add_task("down", parallelism=8, latency_s=0.001)
    builder.add_sink("sink")
    builder.connect("source", "up")
    builder.connect("up", "down", grouping=Grouping.ALL)
    builder.connect("down", "sink")
    sim = Simulator()
    cluster = build_cluster(sim, worker_vms=6)
    runtime = TopologyRuntime(builder.build(), cluster, sim=sim, config=fast_config("dcr"))
    runtime.deploy()
    for executor in runtime.executors.values():
        executor.start()
    return runtime


def test_routing_fanout_cost(benchmark, engine_bench_recorder):
    """Cost of routing 50 batches of 16 events through an 8-way ALL fan-out.

    Exercises grouping selection, the per-channel FIFO bookkeeping and (post
    overhaul) the batched same-channel delivery path: each ``route()`` call
    emits 16 events on the same 8 channels in one tick.
    """

    def fan_out():
        runtime = _fanout_runtime()
        router = runtime.router
        sim = runtime.sim
        for round_index in range(50):
            events = [
                Event.data("up", payload={"seq": round_index * 16 + i}, created_at=sim.now)
                for i in range(16)
            ]
            router.route("up#0", "up", events)
            sim.run(until=sim.now + 1.0)
        return router.routed_count

    routed = benchmark.pedantic(fan_out, rounds=5, iterations=1, warmup_rounds=1)
    # 50 rounds x 16 events x 8 ALL-grouping targets, plus downstream hops.
    assert routed >= 50 * 16 * 8
    engine_bench_recorder("routing_fanout", benchmark, events=routed)


class _Clock:
    """Minimal stand-in for the Simulator in log-only benchmarks."""

    def __init__(self) -> None:
        self.now = 0.0


def _synthetic_log(num_records: int = 50_000) -> EventLog:
    """An EventLog with ``num_records`` emits and receipts in time order."""
    clock = _Clock()
    log = EventLog(clock)  # type: ignore[arg-type]
    for i in range(num_records):
        clock.now = i * 0.01
        log.record_source_emit(root_id=i, source="source", replay_count=0)
        log.record_sink_receipt(
            root_id=i, event_id=i * 7 + 1, sink="sink",
            root_emitted_at=clock.now - 0.5, replay_count=1 if i % 97 == 0 else 0,
        )
    clock.now = num_records * 0.01
    return log


def test_log_query_cost(benchmark, engine_bench_recorder):
    """Cost of the windowed log queries metrics and monitors issue every sample.

    Replays the query mix of one monitoring pass over a 50k-record log:
    short sliding windows, recovery-metric scans and both timelines.
    """
    log = _synthetic_log()
    end = log.sim.now

    def query_mix():
        total = 0
        for i in range(100):
            start = (i * 37) % int(end - 10)
            total += len(log.receipts_between(start, start + 10.0))
            total += len(log.emits_between(start, start + 10.0))
        total += len(log.receipts_after(end - 30.0))
        first = log.first_receipt_after(end / 2)
        total += 0 if first is None else 1
        last_old = log.last_old_receipt(end / 2)
        total += 0 if last_old is None else 1
        last_replay = log.last_replay_receipt(end / 2)
        total += 0 if last_replay is None else 1
        total += log.distinct_roots_received()
        total += len(rate_timeline(log, kind="output", bin_s=5.0))
        total += len(latency_timeline(log, window_s=10.0))
        return total

    total = benchmark(query_mix)
    assert total > 0
    # 50k emits + 50k receipts live in the log every query pass scans.
    engine_bench_recorder("log_query", benchmark, events=100_000)


def _simulated_events(runtime: TopologyRuntime) -> int:
    """Kernel callbacks plus cascade steps the batch stepper ran inline."""
    stepper = getattr(runtime, "batch_stepper", None)
    inline = getattr(stepper, "inline_events", 0) if stepper is not None else 0
    return runtime.sim.processed_events + int(inline)


def test_grid_steady_state_simulation_cost(benchmark, engine_bench_recorder):
    """Wall-clock cost of simulating 10 s of the Grid dataflow in steady state."""
    counts = {}

    def simulate():
        sim = Simulator()
        cluster = build_cluster(sim, worker_vms=11)
        runtime = TopologyRuntime(topologies.grid(), cluster, sim=sim, config=fast_config("dcr"))
        runtime.deploy()
        runtime.start()
        sim.run(until=10.0)
        counts["events"] = _simulated_events(runtime)
        return len(runtime.log.sink_receipts)

    receipts = benchmark.pedantic(simulate, rounds=5, iterations=1, warmup_rounds=1)
    # 32 ev/s for ~10 s minus pipeline fill.
    assert receipts > 200
    engine_bench_recorder("grid_steady_state", benchmark, events=counts["events"])


def test_grid_steady_state_batched_cost(benchmark, engine_bench_recorder):
    """The same 10 s Grid steady state under the batch-stepping cascade.

    Identical workload to ``grid_steady_state`` with ``batch_stepping`` on
    (which implies the keyed jitter model); the committed baseline entry is
    the *seed classic* mean for this workload, so ``speedup_vs_seed`` in
    ``BENCH_engine.json`` is the headline batched-kernel speedup.
    """

    counts = {}

    def simulate():
        sim = Simulator()
        cluster = build_cluster(sim, worker_vms=11)
        config = fast_config("dcr")
        config.batch_stepping = True
        runtime = TopologyRuntime(topologies.grid(), cluster, sim=sim, config=config)
        runtime.deploy()
        runtime.start()
        sim.run(until=10.0)
        counts["events"] = _simulated_events(runtime)
        return len(runtime.log.sink_receipts)

    receipts = benchmark.pedantic(simulate, rounds=5, iterations=1, warmup_rounds=1)
    assert receipts > 200
    engine_bench_recorder("grid_steady_state_batched", benchmark, events=counts["events"])


def test_grid_steady_state_columnar_cost(benchmark, engine_bench_recorder):
    """10 s of a 100x-rate Grid under batch stepping + the columnar event log.

    Same utilization as ``grid_steady_state`` (source rate x100, per-task
    latency /100) but ~100x the event volume — the regime the columnar
    numpy-resident log exists for: cascades write straight into its arrays
    with no per-event object on the fast path.  The committed baseline is the
    *seed* engine measured on this exact workload, so ``speedup_vs_seed`` in
    ``BENCH_engine.json`` is the columnar headline and ``events_per_second``
    the absolute throughput figure the regression gate floors at 1M ev/s.
    Without numpy ``columnar_log`` degrades to the classic log and the gate
    skips the throughput floor.
    """
    counts = {}

    def simulate():
        sim = Simulator()
        cluster = build_cluster(sim, worker_vms=11)
        config = fast_config("dcr")
        config.batch_stepping = True
        config.columnar_log = True
        runtime = TopologyRuntime(
            topologies.grid(rate=800.0, latency_s=0.001), cluster, sim=sim, config=config
        )
        runtime.deploy()
        runtime.start()
        sim.run(until=10.0)
        counts["events"] = _simulated_events(runtime)
        return len(runtime.log.sink_receipts)

    receipts = benchmark.pedantic(simulate, rounds=5, iterations=1, warmup_rounds=1)
    # 3200 ev/s at the sink for ~10 s minus pipeline fill.
    assert receipts > 20_000
    engine_bench_recorder("grid_steady_state_columnar", benchmark, events=counts["events"])


def test_grid_steady_state_acked_cost(benchmark, engine_bench_recorder):
    """The 100x-rate Grid steady state with per-tuple acking on.

    Same workload as ``grid_steady_state_columnar`` but every tuple carries a
    Storm-style XOR ack tree: registered at emission, anchored per routed
    copy, acked per completion.  Under batch stepping the cascade folds that
    whole stream per tuple tree with ``bitwise_xor`` reductions and commits
    it through the acker's bulk APIs.  The committed baseline entry is the
    *classic* (non-batched) engine measured on this exact acked workload, so
    ``speedup_vs_seed`` is the vectorized-acking headline.  The timeout is
    large relative to the run and ``max_spout_pending`` is uncapped (Storm's
    own default leaves it null) so steady state stays loss-free.
    """
    counts = {}

    def simulate():
        sim = Simulator()
        cluster = build_cluster(sim, worker_vms=11)
        config = fast_config("dcr")
        config.reliability = ReliabilityConfig(
            ack_all_events=True,
            ack_timeout_s=30.0,
            periodic_checkpoint_interval_s=None,
            capture_on_prepare=False,
            max_spout_pending=None,
        )
        config.batch_stepping = True
        runtime = TopologyRuntime(
            topologies.grid(rate=800.0, latency_s=0.001), cluster, sim=sim, config=config
        )
        runtime.deploy()
        runtime.start()
        sim.run(until=10.0)
        counts["events"] = _simulated_events(runtime)
        # ~800 trees/s for 10 s, nearly all completed (loss-free steady state).
        assert runtime.acker.stats.completed > 7_000
        return len(runtime.log.sink_receipts)

    receipts = benchmark.pedantic(simulate, rounds=5, iterations=1, warmup_rounds=1)
    assert receipts > 20_000
    engine_bench_recorder("grid_steady_state_acked", benchmark, events=counts["events"])


def test_shard_scaling_cost(benchmark, engine_bench_recorder):
    """Wall-clock cost of a 4-shard partition-parallel Grid run (pool of 4).

    Covers the whole sharded path: per-shard hermetic simulation in worker
    processes, result pickling and the deterministic merge.  The committed
    baseline was recorded alongside the feature (the seed had no sharded
    mode), so the gate guards the sharding machinery itself.
    """
    from repro.experiments.sharded import run_sharded_experiment

    counts = {}

    def simulate():
        result = run_sharded_experiment(
            dag="grid", shards=4, workers=4, duration_s=10.0, seed=2018
        )
        counts["events"] = len(result.log.source_emits) + len(result.log.sink_receipts)
        return len(result.log.sink_receipts)

    receipts = benchmark.pedantic(simulate, rounds=5, iterations=1, warmup_rounds=1)
    assert receipts > 200
    engine_bench_recorder("shard_scaling", benchmark, events=counts["events"])


def _sink_drain_runtime(batch_max: int) -> TopologyRuntime:
    """A deployed minimal chain whose sink is about to drain a deep queue."""
    builder = TopologyBuilder("sinkdrain")
    builder.add_source("source", rate=1.0)
    builder.add_task("work", parallelism=1, latency_s=0.001)
    builder.add_sink("sink")
    builder.chain("source", "work", "sink")
    sim = Simulator()
    cluster = build_cluster(sim, worker_vms=2)
    config = fast_config("dcr")
    config.sink_batch_max = batch_max
    runtime = TopologyRuntime(builder.build(), cluster, sim=sim, config=config)
    runtime.deploy()
    for executor in runtime.executors.values():
        if executor.task.name != "source":  # keep the generator quiet
            executor.start()
    return runtime


def _drain_sink(batch_max: int, num_events: int = 20_000) -> int:
    """Flood the sink's input queue and drain it; returns receipts recorded."""
    runtime = _sink_drain_runtime(batch_max)
    deliver = runtime.deliver
    for i in range(num_events):
        event = Event.data("work", payload={"seq": i}, created_at=0.0)
        deliver("sink#0", event, "work#0")
    runtime.sim.run()
    return len(runtime.log.sink_receipts)


def test_sink_drain_batched(benchmark, engine_bench_recorder):
    """Cost of a 20k-event sink backlog drain with batched service.

    Consecutive data events coalesce into one kernel callback per batch
    (``sink_batch_max``), mirroring the router's same-channel delivery
    batching; receipts keep their exact per-event completion times.
    """
    receipts = benchmark.pedantic(
        lambda: _drain_sink(batch_max=32), rounds=5, iterations=1, warmup_rounds=1
    )
    assert receipts == 20_000
    engine_bench_recorder("sink_drain_batched", benchmark, events=20_000)


def test_sink_drain_unbatched(benchmark, engine_bench_recorder):
    """The same drain with batching disabled: one kernel event per completion.

    The batched/unbatched mean ratio in ``BENCH_engine.json`` is the win of
    the executor batch-service path.
    """
    receipts = benchmark.pedantic(
        lambda: _drain_sink(batch_max=0), rounds=5, iterations=1, warmup_rounds=1
    )
    assert receipts == 20_000
    engine_bench_recorder("sink_drain_unbatched", benchmark, events=20_000)
