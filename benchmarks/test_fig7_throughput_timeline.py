"""Benchmark / reproduction of Fig. 7: throughput timelines during Grid scale-in.

The paper's Fig. 7 shows the input rate (at the source) and output rate (at the
sink) around the migration request for each strategy.  The qualitative features
checked here:

* the steady state is 8 ev/s in and 32 ev/s out (Grid has 1:4 selectivity);
* DCR and CCR pause the source (zero input rate during the migration) while
  DSM never does;
* during the restore there is an output gap (zero output) for every strategy;
* DSM takes much longer than DCR/CCR to return to a stable output rate.
"""

from __future__ import annotations

from repro.experiments.figures import figure7_series
from repro.experiments.formatting import format_rate_series

from benchmarks.conftest import write_result


def _reproduce(matrix):
    return figure7_series(matrix, dag="grid", scaling="in", bin_s=5.0)


def _rates_between(points, start, end):
    return [p.rate for p in points if start <= p.time < end]


def test_fig7_throughput_timeline(benchmark, matrix):
    series = benchmark.pedantic(_reproduce, args=(matrix,), rounds=1, iterations=1)

    lines = ["Fig. 7: input/output throughput during Grid scale-in (time relative to migration request)"]
    for strategy, data in series.items():
        lines.append(format_rate_series(f"{strategy} input", data["input"]))
        lines.append(format_rate_series(f"{strategy} output", data["output"]))
    write_result("fig7_grid_scale_in_timeline", "\n".join(lines))

    for strategy, data in series.items():
        # Steady state before the migration: 8 ev/s in, 32 ev/s out.
        pre_in = _rates_between(data["input"], -60.0, -10.0)
        pre_out = _rates_between(data["output"], -60.0, -10.0)
        assert abs(sum(pre_in) / len(pre_in) - 8.0) < 1.5, strategy
        assert abs(sum(pre_out) / len(pre_out) - 32.0) < 4.0, strategy

    # DCR and CCR pause the source: the input rate drops to zero right after
    # the request; DSM's input never pauses.
    for strategy in ("dcr", "ccr"):
        early_in = _rates_between(series[strategy]["input"], 2.0, 12.0)
        assert min(early_in) == 0.0, strategy
    dsm_early_in = _rates_between(series["dsm"]["input"], 2.0, 12.0)
    assert min(dsm_early_in) > 0.0

    # Output gap during the restore for every strategy.
    for strategy, data in series.items():
        restore = matrix.cell("grid", strategy, "in").metrics.restore_duration_s
        gap = _rates_between(data["output"], 12.0, max(15.0, restore - 3.0))
        if gap:
            assert max(gap) == 0.0, strategy

    # DSM's output is still disturbed (zero or far from stable) well after
    # CCR has already restored its output.
    ccr_restore = matrix.cell("grid", "ccr", "in").metrics.restore_duration_s
    dsm_restore = matrix.cell("grid", "dsm", "in").metrics.restore_duration_s
    assert dsm_restore > ccr_restore + 20.0

    # After CCR's restore, its output comes back up.
    ccr_post = _rates_between(series["ccr"]["output"], ccr_restore + 5.0, ccr_restore + 60.0)
    assert max(ccr_post) > 20.0
